"""Deterministic fault injection: plans, events, and the injector.

The subsystem's fault model covers the failure shapes a daemon-agent
deployment actually sees (§IV-C keeps daemons alive precisely because
accelerator contexts are fragile):

* ``crash``   — the daemon's device context dies mid-kernel
  (:class:`~repro.errors.DeviceFailure`); optionally recurring, so
  retries can be exhausted and checkpoint recovery exercised;
* ``hang``    — the daemon goes silent for a while without crashing; the
  heartbeat monitor must notice the missed beats;
* ``shm``     — the daemon's System V segment is corrupted; the agent's
  integrity check catches it before data is consumed;
* ``drop``    — a control message between agent and daemon is lost; the
  protocol stalls and the watchdog converts the stall into a verdict;
* ``delay``   — a control message is delivered late (transient; no
  recovery needed, only latency).

A second family targets the *cluster network* — the sync collectives
behind synchronization caching/skipping (§III-B) and the partition
exchanges behind workload balancing (§III-C):

* ``net_drop``       — one node's collective fragment is lost; the
  resilient transport retransmits it point-to-point after an ack
  timeout;
* ``net_delay``      — a fragment arrives late; the barrier pays the
  straggler (latency only);
* ``net_dup``        — a fragment is delivered twice; sequence numbers
  dedupe it (idempotent delivery);
* ``sync_fail``      — a whole collective round fails and falls back to
  point-to-point retransmission;
* ``node_partition`` — a node is unreachable; the retransmission budget
  is exhausted and the engine takes the rollback + degradation path.

A third family models *gray failures* — daemons that keep heartbeating
but run slow (thermal throttling, contended PCIe, shm pressure).  They
never raise anything; detecting and responding to them is the straggler
layer's job (:mod:`repro.fault.straggler`):

* ``slowdown``       — the daemon's compute coefficient is inflated by
  ``factor`` for the next ``passes`` edge passes;
* ``shm_slow``       — the pair's transfer (download/upload) bandwidth
  cost is inflated instead;
* ``flaky_slowdown`` — intermittent: the compute inflation applies only
  on every other pass, the hardest shape to flag without patience.

The same gray shape exists on the network edge when a rack
:class:`~repro.cluster.topology.Topology` is wired in:

* ``link_slow``  — a node's uplink fragments pay ``factor``x wire time
  for ``passes`` collectives (values never corrupted);
* ``link_flaky`` — the uplink inflation fires on alternating
  collectives only.

Plans are *data*: a tuple of :class:`FaultEvent` keyed by superstep, so
a run with a given plan is exactly reproducible.  :meth:`FaultPlan.random`
derives a plan from a seed deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultPlanError

# Fault kinds (the vocabulary of FaultEvent.kind).
CRASH = "crash"
HANG = "hang"
SHM_CORRUPTION = "shm"
MESSAGE_DROP = "drop"
MESSAGE_DELAY = "delay"

#: Daemon-agent edge kinds (the original fault model).
KINDS = (CRASH, HANG, SHM_CORRUPTION, MESSAGE_DROP, MESSAGE_DELAY)

# Inter-node network kinds (repro.cluster.network.ResilientTransport).
NET_DROP = "net_drop"              # a collective fragment is lost
NET_DELAY = "net_delay"            # a fragment arrives late (straggler)
NET_DUP = "net_dup"                # a fragment is delivered twice
SYNC_FAIL = "sync_fail"            # a whole collective round fails
NODE_PARTITION = "node_partition"  # a node is unreachable for the round

#: Kinds that target the cluster interconnect instead of a daemon pair;
#: they arm on the resilient transport, not on an agent.
NETWORK_KINDS = (NET_DROP, NET_DELAY, NET_DUP, SYNC_FAIL, NODE_PARTITION)

# Gray-failure kinds (repro.fault.straggler): the daemon stays alive and
# keeps heartbeating, it just gets slow.
SLOWDOWN = "slowdown"              # compute coefficient inflated
SHM_SLOW = "shm_slow"              # transfer bandwidth cost inflated
FLAKY_SLOWDOWN = "flaky_slowdown"  # intermittent compute inflation

#: Kinds that degrade a pair's speed without breaking anything; they
#: need neither the monitor nor the transport to fire.
GRAY_KINDS = (SLOWDOWN, SHM_SLOW, FLAKY_SLOWDOWN)

# Link-level gray failures (repro.cluster.network.ResilientTransport over
# a Topology): the node's *uplink* stays up but runs slow — fragments pay
# inflated wire time for `passes` collectives, values are never corrupted.
LINK_SLOW = "link_slow"            # uplink fragments inflated every pass
LINK_FLAKY = "link_flaky"          # intermittent uplink inflation

#: Gray kinds on the network edge; like NETWORK_KINDS they arm on the
#: resilient transport, but they inflate durations instead of breaking
#: delivery, and they persist for `passes` collectives.
LINK_KINDS = (LINK_SLOW, LINK_FLAKY)

#: Every kind that arms on the resilient transport.
TRANSPORT_KINDS = NETWORK_KINDS + LINK_KINDS

ALL_KINDS = KINDS + NETWORK_KINDS + GRAY_KINDS + LINK_KINDS

#: Kinds that manifest as a protocol stall and therefore need the
#: heartbeat monitor (and the pipelined protocol) to be detected at all.
STALL_KINDS = (HANG, MESSAGE_DROP)

#: Channel directions a drop/delay event may target.
TO_AGENT = "to_agent"
TO_DAEMON = "to_daemon"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``superstep`` is the engine iteration at which the event is armed;
    the fault fires during that superstep's processing.  ``repeat``
    applies to crashes only: the total number of times the device fault
    re-fires (it is re-armed on every daemon respawn until spent), which
    is how a plan exhausts a retry policy deterministically.
    """

    kind: str
    superstep: int
    node_id: int = 0
    daemon_index: int = 0
    after_kernels: int = 0          # crash: fire after N successful kernels
    repeat: int = 1                 # crash: total firings (>=1)
    duration_ms: float = 100.0      # hang/delay length
    direction: str = TO_AGENT       # drop/delay: which control channel
    region: str = "areas"           # shm: region to corrupt
    factor: float = 4.0             # gray: cost inflation multiplier
    passes: int = 2                 # gray: edge passes the inflation lasts

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{ALL_KINDS}"
            )
        if self.superstep < 0:
            raise FaultPlanError(f"negative superstep {self.superstep}")
        if self.node_id < 0 or self.daemon_index < 0:
            raise FaultPlanError(
                f"negative fault target node={self.node_id} "
                f"daemon={self.daemon_index}"
            )
        if self.after_kernels < 0:
            raise FaultPlanError(f"negative after_kernels {self.after_kernels}")
        if self.repeat < 1:
            raise FaultPlanError(f"repeat must be >= 1, got {self.repeat}")
        if self.duration_ms < 0:
            raise FaultPlanError(f"negative duration_ms {self.duration_ms}")
        if self.direction not in (TO_AGENT, TO_DAEMON):
            raise FaultPlanError(
                f"direction must be {TO_AGENT!r}/{TO_DAEMON!r}, "
                f"got {self.direction!r}"
            )
        if self.kind in GRAY_KINDS or self.kind in LINK_KINDS:
            if self.factor < 1.0:
                raise FaultPlanError(
                    f"gray fault factor must be >= 1 (a slowdown), "
                    f"got {self.factor}"
                )
            if self.passes < 1:
                raise FaultPlanError(
                    f"gray fault passes must be >= 1, got {self.passes}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reproducible schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not all(isinstance(e, FaultEvent) for e in self.events):
            raise FaultPlanError("FaultPlan.events must hold FaultEvent items")

    @property
    def requires_monitor(self) -> bool:
        """True if any event can only be *detected* via heartbeats."""
        return any(e.kind in STALL_KINDS for e in self.events)

    @property
    def requires_transport(self) -> bool:
        """True if any event targets the inter-node network (delivery or
        link gray-faults); arming it needs the resilient transport
        (``network_resilient=True``)."""
        return any(e.kind in TRANSPORT_KINDS for e in self.events)

    def for_superstep(self, superstep: int) -> List[FaultEvent]:
        return [e for e in self.events if e.superstep == superstep]

    def with_events(self, *extra: FaultEvent) -> "FaultPlan":
        return replace(self, events=self.events + tuple(extra))

    # -- convenience constructors ------------------------------------------

    @classmethod
    def single(cls, kind: str, superstep: int, **kw) -> "FaultPlan":
        """A plan with exactly one event."""
        return cls(events=(FaultEvent(kind=kind, superstep=superstep, **kw),))

    @classmethod
    def random(cls, seed: int, *, supersteps: int, num_nodes: int,
               daemons_per_node: int = 1, rate: float = 0.1,
               kinds: Sequence[str] = KINDS,
               hang_ms: float = 100.0, delay_ms: float = 5.0,
               slow_factor: float = 4.0, slow_passes: int = 2,
               ) -> "FaultPlan":
        """Derive a plan deterministically from ``seed``.

        Each (superstep, node, daemon) slot independently draws a fault
        with probability ``rate``; the kind is drawn uniformly from
        ``kinds`` — which may mix daemon-edge kinds (:data:`KINDS`),
        network kinds (:data:`NETWORK_KINDS`) and gray kinds
        (:data:`GRAY_KINDS`, parameterized by ``slow_factor`` /
        ``slow_passes``).  The same seed always yields the same plan.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"rate must be in [0, 1], got {rate}")
        if supersteps < 0 or num_nodes < 1 or daemons_per_node < 1:
            raise FaultPlanError(
                f"bad plan shape: supersteps={supersteps}, "
                f"nodes={num_nodes}, daemons={daemons_per_node}"
            )
        for kind in kinds:
            if kind not in ALL_KINDS:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for step in range(supersteps):
            for node in range(num_nodes):
                for daemon in range(daemons_per_node):
                    if rng.random() >= rate:
                        continue
                    kind = kinds[int(rng.integers(len(kinds)))]
                    events.append(FaultEvent(
                        kind=kind, superstep=step, node_id=node,
                        daemon_index=(0 if kind in TRANSPORT_KINDS
                                      else daemon),
                        after_kernels=int(rng.integers(4)),
                        duration_ms=(hang_ms if kind == HANG else delay_ms),
                        direction=(TO_AGENT if rng.random() < 0.5
                                   else TO_DAEMON),
                        factor=slow_factor, passes=slow_passes,
                    ))
        return cls(events=tuple(events))


class FaultInjector:
    """Arms a plan's events on the live middleware, superstep by superstep.

    Events are one-shot: once armed for a superstep they are consumed, so
    a superstep re-executed after a checkpoint rollback does not re-inject
    the same fault (the run converges instead of looping).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending: Dict[int, List[FaultEvent]] = {}
        for event in plan.events:
            self._pending.setdefault(event.superstep, []).append(event)
        self.injected = 0
        self.injected_by_kind: Dict[str, int] = {}
        self.log: List[FaultEvent] = []

    def validate_against(self, agents: Dict[int, "object"],
                         transport: "object" = None) -> None:
        """Fail fast if the plan targets nodes/daemons that do not exist."""
        for event in self.plan.events:
            if event.node_id not in agents:
                raise FaultPlanError(
                    f"fault plan targets unknown node {event.node_id}"
                )
            if event.kind in TRANSPORT_KINDS:
                if transport is None:
                    raise FaultPlanError(
                        f"fault plan contains network event {event.kind!r} "
                        f"but no resilient transport is attached "
                        f"(network_resilient=True)"
                    )
                continue
            agent = agents[event.node_id]
            if event.daemon_index >= len(agent.daemons):
                raise FaultPlanError(
                    f"fault plan targets daemon #{event.daemon_index} on "
                    f"node {event.node_id}, which has only "
                    f"{len(agent.daemons)} daemon(s)"
                )

    def arm(self, superstep: int, agents: Dict[int, "object"],
            transport: "object" = None) -> int:
        """Arm every event scheduled for ``superstep``; returns the count."""
        events = self._pending.pop(superstep, [])
        for event in events:
            if event.kind in TRANSPORT_KINDS:
                if transport is None:
                    raise FaultPlanError(
                        f"cannot arm {event.kind!r} without a resilient "
                        f"transport (network_resilient=True)"
                    )
                self._arm_network(event, transport)
                self.injected += 1
                self.injected_by_kind[event.kind] = (
                    self.injected_by_kind.get(event.kind, 0) + 1)
                self.log.append(event)
                continue
            agent = agents[event.node_id]
            daemon = agent.daemons[event.daemon_index]
            if event.kind == CRASH:
                daemon.accelerator.inject_failure(event.after_kernels)
                daemon.pending_crashes = event.repeat - 1
                daemon.crash_after_kernels = event.after_kernels
            elif event.kind == HANG:
                daemon.pending_hang_ms = event.duration_ms
            elif event.kind == SHM_CORRUPTION:
                daemon.segment.corrupt(event.region)
            elif event.kind == MESSAGE_DROP:
                channel = (daemon.to_agent if event.direction == TO_AGENT
                           else daemon.to_daemon)
                channel.arm_drop()
            elif event.kind == MESSAGE_DELAY:
                channel = (daemon.to_agent if event.direction == TO_AGENT
                           else daemon.to_daemon)
                channel.arm_delay(event.duration_ms)
            elif event.kind == SLOWDOWN:
                daemon.arm_slowdown(event.factor, event.passes)
            elif event.kind == FLAKY_SLOWDOWN:
                daemon.arm_slowdown(event.factor, event.passes, flaky=True)
            elif event.kind == SHM_SLOW:
                daemon.arm_transfer_slowdown(event.factor, event.passes)
            self.injected += 1
            self.injected_by_kind[event.kind] = (
                self.injected_by_kind.get(event.kind, 0) + 1)
            self.log.append(event)
        return len(events)

    @staticmethod
    def _arm_network(event: FaultEvent, transport: "object") -> None:
        """Arm one network event on the resilient transport."""
        if event.kind == NET_DROP:
            transport.arm_drop(event.node_id)
        elif event.kind == NET_DELAY:
            transport.arm_delay(event.node_id, event.duration_ms)
        elif event.kind == NET_DUP:
            transport.arm_dup(event.node_id)
        elif event.kind == SYNC_FAIL:
            transport.arm_sync_fail()
        elif event.kind == NODE_PARTITION:
            transport.arm_partition(event.node_id)
        elif event.kind == LINK_SLOW:
            transport.arm_link_slow(event.node_id, event.factor,
                                    event.passes)
        elif event.kind == LINK_FLAKY:
            transport.arm_link_flaky(event.node_id, event.factor,
                                     event.passes)
