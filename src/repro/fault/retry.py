"""Retry policy with exponential backoff for transient faults.

Transient faults — a dropped control message, a one-off device crash, a
hang the watchdog converted into a verdict — are survived by re-running
the failed pass after a backoff delay.  The delay is *simulated* time
(charged to the pass like any other cost), grows exponentially with the
attempt number, and is capped so a deep retry chain cannot dominate the
makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to back off between tries."""

    max_attempts: int = 3
    base_delay_ms: float = 0.5
    backoff_factor: float = 2.0
    max_delay_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise FaultError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.base_delay_ms < 0:
            raise FaultError(
                f"base_delay_ms must be >= 0, got {self.base_delay_ms}"
            )
        if self.backoff_factor < 1.0:
            raise FaultError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay_ms < self.base_delay_ms:
            raise FaultError(
                f"max_delay_ms {self.max_delay_ms} must be >= "
                f"base_delay_ms {self.base_delay_ms}"
            )

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """The policy a :class:`~repro.core.config.MiddlewareConfig` asks for."""
        return cls(
            max_attempts=config.max_retry_attempts,
            base_delay_ms=config.retry_base_delay_ms,
            backoff_factor=config.retry_backoff_factor,
        )

    @classmethod
    def for_network(cls, config) -> "RetryPolicy":
        """The retransmission policy of the resilient transport.

        Shares the config's attempt budget (``max_retry_attempts`` bounds
        retransmits exactly like daemon-pass retries) but backs off from
        the network's own base delay, which tracks the interconnect
        round-trip rather than a daemon respawn.
        """
        return cls(
            max_attempts=config.max_retry_attempts,
            base_delay_ms=config.net_retransmit_base_ms,
            backoff_factor=config.retry_backoff_factor,
        )

    def backoff_ms(self, attempt: int) -> float:
        """Simulated delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise FaultError(f"attempt is 1-based, got {attempt}")
        delay = self.base_delay_ms * self.backoff_factor ** (attempt - 1)
        return min(delay, self.max_delay_ms)

    def delays(self) -> Tuple[float, ...]:
        """The full backoff schedule, one entry per allowed retry."""
        return tuple(self.backoff_ms(a)
                     for a in range(1, self.max_attempts + 1))
