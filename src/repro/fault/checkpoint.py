"""Superstep checkpointing of vertex state for rollback recovery.

Retries handle transient faults *within* a superstep; checkpoints handle
the faults retries cannot: when a node's accelerators are exhausted the
superstep's partial progress (device buffers, agent caches) is no longer
trustworthy, so the engine rolls the vertex tables back to the last
consistent superstep and re-executes from there — the small-cluster
recovery protocol shape (Yan et al.) instead of GraphX's full lineage
recomputation from iteration 0.

Checkpoint cost is simulated, proportional to the vertex table size
(``fixed_ms + ms_per_cell * cells``), and is reported per superstep in
the trace (``checkpoint_ms``) so the overhead of the protection is
visible and bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import CheckpointError


@dataclass
class Checkpoint:
    """One durable snapshot of engine state at a superstep boundary."""

    iteration: int
    values: np.ndarray
    active: np.ndarray
    cost_ms: float

    @property
    def cells(self) -> int:
        return int(self.values.size)


class CheckpointStore:
    """Keeps the most recent vertex-table snapshots, charging their cost."""

    def __init__(self, interval: int, ms_per_cell: float = 2e-5,
                 fixed_ms: float = 0.5, keep: int = 2) -> None:
        if interval < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {interval}"
            )
        if ms_per_cell < 0 or fixed_ms < 0:
            raise CheckpointError(
                f"negative checkpoint cost model "
                f"(ms_per_cell={ms_per_cell}, fixed_ms={fixed_ms})"
            )
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.interval = int(interval)
        self.ms_per_cell = float(ms_per_cell)
        self.fixed_ms = float(fixed_ms)
        self.keep = int(keep)
        self._checkpoints: List[Checkpoint] = []
        self.saves = 0
        self.restores = 0
        self.total_checkpoint_ms = 0.0

    # -- schedule ----------------------------------------------------------

    def due(self, iteration: int) -> bool:
        """Checkpoint boundaries: iteration 0 and every ``interval`` after."""
        return iteration % self.interval == 0

    # -- persistence -------------------------------------------------------

    def snapshot_cost_ms(self, cells: int) -> float:
        return self.fixed_ms + self.ms_per_cell * int(cells)

    def save(self, iteration: int, values: np.ndarray,
             active: np.ndarray) -> float:
        """Snapshot ``(values, active)``; returns the simulated cost."""
        cost = self.snapshot_cost_ms(values.size)
        self._checkpoints.append(Checkpoint(
            iteration=int(iteration),
            values=np.array(values, copy=True),
            active=np.array(active, copy=True),
            cost_ms=cost,
        ))
        del self._checkpoints[:-self.keep]
        self.saves += 1
        self.total_checkpoint_ms += cost
        return cost

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self._checkpoints[-1] if self._checkpoints else None

    def restore(self) -> Checkpoint:
        """The newest checkpoint plus its (charged) read-back cost.

        The returned arrays are fresh copies; restoring twice yields two
        independent states.  ``cost_ms`` on the returned object is the
        *restore* cost, identical to the snapshot cost model.
        """
        if not self._checkpoints:
            raise CheckpointError("restore before any checkpoint was saved")
        newest = self._checkpoints[-1]
        self.restores += 1
        return Checkpoint(
            iteration=newest.iteration,
            values=np.array(newest.values, copy=True),
            active=np.array(newest.active, copy=True),
            cost_ms=self.snapshot_cost_ms(newest.values.size),
        )
