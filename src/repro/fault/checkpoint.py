"""Superstep checkpointing of vertex state for rollback recovery.

Retries handle transient faults *within* a superstep; checkpoints handle
the faults retries cannot: when a node's accelerators are exhausted the
superstep's partial progress (device buffers, agent caches) is no longer
trustworthy, so the engine rolls the vertex tables back to the last
consistent superstep and re-executes from there — the small-cluster
recovery protocol shape (Yan et al.) instead of GraphX's full lineage
recomputation from iteration 0.

Checkpoints are **incremental**: when the caller passes the vertices
changed since the last save, only their rows are stored as a *delta*
against the last full snapshot (plus the active-flag flips), and the
snapshot cost is charged on the cells actually written.  A full snapshot
is taken every ``full_every`` deltas (and whenever no change set is
supplied), bounding the reconstruction chain.  Frontier algorithms
(SSSP/BFS), whose supersteps touch a sliver of the vertex table, stop
paying for snapshotting mostly-unchanged state.

Checkpoint cost is simulated (``fixed_ms + ms_per_cell * cells``) and is
reported per superstep in the trace (``checkpoint_ms``) so the overhead
of the protection is visible and bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..errors import CheckpointError


@dataclass
class Checkpoint:
    """One durable full snapshot of engine state at a superstep boundary."""

    iteration: int
    values: np.ndarray
    active: np.ndarray
    cost_ms: float

    @property
    def cells(self) -> int:
        return int(self.values.size)


@dataclass
class CheckpointDelta:
    """Changed rows (and active flips) since the previous save."""

    iteration: int
    ids: np.ndarray               # changed vertex ids
    rows: np.ndarray              # their new value rows
    active_flips: np.ndarray      # vertices whose active flag toggled
    cost_ms: float

    @property
    def cells(self) -> int:
        return int(self.rows.size)


class CheckpointStore:
    """Keeps the most recent vertex-table snapshots, charging their cost."""

    def __init__(self, interval: int, ms_per_cell: float = 2e-5,
                 fixed_ms: float = 0.5, keep: int = 2,
                 full_every: int = 8) -> None:
        if interval < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {interval}"
            )
        if ms_per_cell < 0 or fixed_ms < 0:
            raise CheckpointError(
                f"negative checkpoint cost model "
                f"(ms_per_cell={ms_per_cell}, fixed_ms={fixed_ms})"
            )
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        if full_every < 1:
            raise CheckpointError(
                f"full_every must be >= 1, got {full_every}"
            )
        self.interval = int(interval)
        self.ms_per_cell = float(ms_per_cell)
        self.fixed_ms = float(fixed_ms)
        self.keep = int(keep)
        self.full_every = int(full_every)
        self._checkpoints: List[Checkpoint] = []
        self._deltas: List[CheckpointDelta] = []
        self._last_active: Optional[np.ndarray] = None
        self._force_full = False
        self.saves = 0
        self.delta_saves = 0
        self.restores = 0
        self.total_checkpoint_ms = 0.0
        #: whether the most recent :meth:`save` stored a delta (vs a full
        #: snapshot) — what speculative checkpointing keys off, since
        #: only delta writes may ride the next superstep's compute window
        self.last_save_was_delta = False

    # -- schedule ----------------------------------------------------------

    def due(self, iteration: int) -> bool:
        """Checkpoint boundaries: iteration 0 and every ``interval`` after."""
        return iteration % self.interval == 0

    # -- persistence -------------------------------------------------------

    def snapshot_cost_ms(self, cells: int) -> float:
        return self.fixed_ms + self.ms_per_cell * int(cells)

    def save(self, iteration: int, values: np.ndarray, active: np.ndarray,
             changed: Optional[Union[np.ndarray, list]] = None) -> float:
        """Snapshot ``(values, active)``; returns the simulated cost.

        ``changed`` — vertex ids (or a boolean mask) touched since the
        previous save.  When given and a full base exists, only those
        rows are stored as a delta, and the cost is charged on the cells
        actually written.  ``changed=None`` (the original API) always
        takes a full snapshot.
        """
        ids = self._normalize_changed(changed, values)
        width = values.shape[1] if values.ndim > 1 else 1
        use_delta = (
            ids is not None
            and self._checkpoints
            and not self._force_full
            and len(self._deltas) < self.full_every
            and ids.size * width < values.size
        )
        if use_delta:
            cost = self.snapshot_cost_ms(ids.size * width)
            flips = np.nonzero(active != self._last_active)[0] \
                if self._last_active is not None \
                else np.nonzero(active)[0]
            self._deltas.append(CheckpointDelta(
                iteration=int(iteration),
                ids=np.array(ids, copy=True),
                rows=np.array(values[ids], copy=True),
                active_flips=flips.astype(np.int64),
                cost_ms=cost,
            ))
            self.delta_saves += 1
        else:
            cost = self.snapshot_cost_ms(values.size)
            self._checkpoints.append(Checkpoint(
                iteration=int(iteration),
                values=np.array(values, copy=True),
                active=np.array(active, copy=True),
                cost_ms=cost,
            ))
            del self._checkpoints[:-self.keep]
            self._deltas = []
            self._force_full = False
        self._last_active = np.array(active, copy=True)
        self.last_save_was_delta = bool(use_delta)
        self.saves += 1
        self.total_checkpoint_ms += cost
        return cost

    @staticmethod
    def _normalize_changed(changed, values) -> Optional[np.ndarray]:
        if changed is None:
            return None
        arr = np.asarray(changed)
        if arr.dtype == bool:
            ids = np.nonzero(arr)[0]
        else:
            ids = np.unique(arr.astype(np.int64).ravel())
        if ids.size and (ids[0] < 0 or ids[-1] >= values.shape[0]):
            raise CheckpointError(
                f"changed ids out of range [0, {values.shape[0]})"
            )
        return ids

    @property
    def latest(self) -> Optional[Checkpoint]:
        """The newest *full* snapshot (None before the first save)."""
        return self._checkpoints[-1] if self._checkpoints else None

    @property
    def latest_iteration(self) -> Optional[int]:
        """The superstep the newest save (full or delta) captures."""
        if self._deltas:
            return self._deltas[-1].iteration
        return self._checkpoints[-1].iteration if self._checkpoints else None

    def peek(self) -> Optional[Checkpoint]:
        """The newest saved state, reconstructed without side effects.

        Like :meth:`restore` but free: no restore is counted, no cost
        is modeled (``cost_ms`` is 0) and the next save is *not* forced
        full — the engine's run is not perturbed.  This is what the
        serving layer uses to externalize a job's resume point after a
        failure or into a durable journal.  Returns ``None`` before the
        first save.
        """
        if not self._checkpoints:
            return None
        base = self._checkpoints[-1]
        values = np.array(base.values, copy=True)
        active = np.array(base.active, copy=True)
        iteration = base.iteration
        for delta in self._deltas:
            values[delta.ids] = delta.rows
            active[delta.active_flips] = ~active[delta.active_flips]
            iteration = delta.iteration
        return Checkpoint(iteration=iteration, values=values,
                          active=active, cost_ms=0.0)

    def seed(self, iteration: int, values: np.ndarray,
             active: np.ndarray) -> None:
        """Install pre-existing state as the base full snapshot, free.

        A resumed run (``run_stepwise(..., resume_from=ckpt)``) starts
        from state that is *already durable* — it was read back from a
        checkpoint — so the store begins life holding it as the full
        base, at zero simulated cost and without counting a save.  A
        mid-run rollback can then restore to the resume point even
        before the resumed run's first own checkpoint falls due.
        """
        if self._checkpoints or self._deltas:
            raise CheckpointError("seed on a non-empty checkpoint store")
        self._checkpoints.append(Checkpoint(
            iteration=int(iteration),
            values=np.array(values, copy=True),
            active=np.array(active, copy=True),
            cost_ms=0.0,
        ))
        self._last_active = np.array(active, copy=True)

    def restore(self) -> Checkpoint:
        """The newest saved state plus its (charged) read-back cost.

        Reconstructs the last full snapshot with every delta replayed on
        top — bit-for-bit the state passed to the newest :meth:`save`.
        The returned arrays are fresh copies; restoring twice yields two
        independent states.  ``cost_ms`` on the returned object is the
        *restore* cost: the full base read-back plus every delta's cells.
        The next save after a restore is forced full (the change chain's
        continuity cannot be assumed across a rollback).
        """
        if not self._checkpoints:
            raise CheckpointError("restore before any checkpoint was saved")
        base = self._checkpoints[-1]
        values = np.array(base.values, copy=True)
        active = np.array(base.active, copy=True)
        iteration = base.iteration
        delta_cells = 0
        for delta in self._deltas:
            values[delta.ids] = delta.rows
            active[delta.active_flips] = ~active[delta.active_flips]
            iteration = delta.iteration
            delta_cells += delta.cells
        self.restores += 1
        self._force_full = True
        return Checkpoint(
            iteration=iteration,
            values=values,
            active=active,
            cost_ms=self.snapshot_cost_ms(base.cells + delta_cells),
        )
