"""Heartbeat-based failure detection for daemon-agent pairs.

The monitor tracks *pair liveness* on the simulated clock: both the
daemon (Algorithm 1) and its agent-side pipeline driver (Algorithm 2)
beat the same per-daemon entry whenever they make protocol progress, and
every intentional wait — a device kernel, a download, an upload — is
declared up front as a *busy lease* (``busy_until``).  A healthy pair
therefore never goes silent: between leases, progress happens at
message-passing instants of zero simulated duration.

A watchdog process wakes every ``interval_ms``, and when ``now`` exceeds
a pair's lease by more than the allowed silence it raises
:class:`~repro.errors.DaemonDead`.  Because every legitimate wait is
leased, the verdict is deterministic and false-positive-free: only an
injected hang (an unleased sleep) or a dropped control message (both
sides parked forever) can let a deadline expire.

With the straggler layer enabled the flat ``timeout_ms`` is refined by
per-phase deadline *budgets* (download/compute/upload) derived from the
cost model: beats may declare which phase the pair is entering, the
allowed silence becomes that phase's budget, and a busy lease that
outlives its budget is counted as a soft *budget overrun* (reported to
the :class:`~repro.fault.straggler.StragglerDetector`, never killed —
gray failures heartbeat on time; only true silence earns a verdict).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..errors import DaemonDead, NodeUnreachable, SimulationError
from ..ipc.scheduler import Now, Sleep

#: Accounting category for watchdog bookkeeping time (kept at zero cost;
#: heartbeats piggyback on protocol messages).
CAT_MONITOR = "fault.monitor"


class HeartbeatMonitor:
    """Per-daemon liveness tracking with busy leases."""

    def __init__(self, interval_ms: float, timeout_ms: float,
                 detector=None) -> None:
        if interval_ms <= 0:
            raise SimulationError(
                f"heartbeat interval must be > 0, got {interval_ms}"
            )
        if timeout_ms < interval_ms:
            raise SimulationError(
                f"heartbeat timeout {timeout_ms} must be >= the "
                f"interval {interval_ms}"
            )
        self.interval_ms = float(interval_ms)
        self.timeout_ms = float(timeout_ms)
        #: daemon_id -> latest "known alive until" time (beat or lease end)
        self._alive_until: Dict[int, float] = {}
        #: daemon_id -> {"download"/"compute"/"upload": allowed ms}
        self._budgets: Dict[int, Dict[str, float]] = {}
        #: daemon_id -> phase declared by the latest beat (None = between
        #: phases; the flat timeout applies)
        self._phase: Dict[int, Optional[str]] = {}
        #: optional StragglerDetector notified of soft budget overruns
        self.detector = detector
        self.beats = 0
        self.verdicts = 0
        self.budget_overruns = 0

    @property
    def tracked(self) -> int:
        """How many daemons the monitor is currently watching."""
        return len(self._alive_until)

    # -- recording ----------------------------------------------------------

    def register(self, daemon_id: int, now: float) -> None:
        """Start tracking a daemon; it is considered alive as of ``now``."""
        self._alive_until[daemon_id] = float(now)

    def forget(self, daemon_id: int) -> None:
        self._alive_until.pop(daemon_id, None)
        self._budgets.pop(daemon_id, None)
        self._phase.pop(daemon_id, None)

    def set_budgets(self, daemon_id: int,
                    budgets: Dict[str, float]) -> None:
        """Install per-phase deadline budgets derived from the cost model.

        A beat that declares ``phase`` makes the pair's allowed silence
        that phase's budget instead of the flat ``timeout_ms``; a lease
        longer than the budget is counted as a soft overrun.
        """
        for phase, allowed in budgets.items():
            if allowed <= 0:
                raise SimulationError(
                    f"phase budget must be > 0, got {phase}={allowed}"
                )
        self._budgets[daemon_id] = dict(budgets)

    def allowed_silence_ms(self, daemon_id: int) -> float:
        """Silence tolerated past the pair's lease right now: the
        declared phase's budget, or the flat timeout between phases."""
        phase = self._phase.get(daemon_id)
        if phase is None:
            return self.timeout_ms
        return self._budgets.get(daemon_id, {}).get(phase,
                                                    self.timeout_ms)

    def beat(self, daemon_id: int, now: float,
             busy_until: Optional[float] = None,
             phase: Optional[str] = None) -> None:
        """Record a heartbeat, optionally extending a busy lease.

        ``busy_until`` declares "I will be legitimately silent until t"
        (a device kernel, a data transfer); ``phase`` names which
        budgeted phase that silence belongs to (a bare beat clears it).
        Beats never move a pair's deadline backwards.
        """
        if daemon_id not in self._alive_until:
            return  # not tracked this pass (e.g. daemon had no work)
        self._phase[daemon_id] = phase
        if busy_until is not None and phase is not None:
            budget = self._budgets.get(daemon_id, {}).get(phase)
            if budget is not None and float(busy_until) - float(now) > budget:
                # the pair is alive but its declared wait already blows
                # the cost-model budget: gray evidence, not a kill
                self.budget_overruns += 1
                if self.detector is not None:
                    self.detector.note_overrun(
                        daemon_id, phase,
                        float(busy_until) - float(now), budget)
        alive = float(now) if busy_until is None else float(busy_until)
        if alive > self._alive_until[daemon_id]:
            self._alive_until[daemon_id] = alive
        self.beats += 1

    # -- verdicts ----------------------------------------------------------

    def silent_ms(self, daemon_id: int, now: float) -> float:
        """How long past its lease the daemon has been silent."""
        alive_until = self._alive_until.get(daemon_id)
        if alive_until is None:
            return 0.0
        return max(0.0, float(now) - alive_until)

    def check(self, now: float) -> None:
        """Raise :class:`DaemonDead` for the first timed-out daemon."""
        for daemon_id in sorted(self._alive_until):
            silent = self.silent_ms(daemon_id, now)
            allowed = self.allowed_silence_ms(daemon_id)
            if silent > allowed:
                self.verdicts += 1
                raise DaemonDead(
                    f"daemon {daemon_id}: no heartbeat for {silent:.3f} ms "
                    f"(allowed {allowed} ms)",
                    daemon_id=daemon_id, silent_ms=silent,
                )

    # -- the watchdog process ----------------------------------------------

    def watchdog(self) -> Generator:
        """A simulated daemon process that periodically checks deadlines.

        Spawned with ``daemon=True`` on the pass scheduler: it never
        blocks pass completion, and a raised verdict propagates out of
        ``Scheduler.run`` into the agent's recovery loop.
        """
        while True:
            yield Sleep(self.interval_ms)
            now = yield Now()
            self.check(now)


class CollectiveMonitor:
    """Ack-deadline tracking for collective retransmission rounds.

    The network-layer sibling of :class:`HeartbeatMonitor`: where the
    heartbeat monitor watches daemon-agent *pair* liveness, this one
    watches *node* liveness during a collective.  The resilient
    transport (:class:`~repro.cluster.network.ResilientTransport`)
    declares an ack expectation before every (re)transmission; a node
    that stays past its deadline through the whole retransmission
    budget earns a :class:`~repro.errors.NodeUnreachable` verdict — the
    signal the engine converts into rollback + degradation.
    """

    def __init__(self, timeout_ms: float) -> None:
        if timeout_ms <= 0:
            raise SimulationError(
                f"ack timeout must be > 0, got {timeout_ms}"
            )
        self.timeout_ms = float(timeout_ms)
        #: node_id -> ack deadline on the collective's local clock
        self._deadlines: Dict[int, float] = {}
        self.acks = 0
        self.verdicts = 0

    @property
    def pending(self) -> int:
        """Nodes currently owing an ack."""
        return len(self._deadlines)

    def expect(self, node_id: int, now: float) -> None:
        """Declare that ``node_id`` owes an ack by ``now + timeout``."""
        self._deadlines[node_id] = float(now) + self.timeout_ms

    def ack(self, node_id: int) -> None:
        """The node acknowledged; its deadline is discharged."""
        if node_id in self._deadlines:
            del self._deadlines[node_id]
            self.acks += 1

    def overdue(self, node_id: int, now: float) -> bool:
        deadline = self._deadlines.get(node_id)
        return deadline is not None and float(now) > deadline

    def verdict(self, node_id: int, attempts: int,
                wasted_ms: float) -> None:
        """Raise the :class:`NodeUnreachable` verdict for ``node_id``."""
        self._deadlines.pop(node_id, None)
        self.verdicts += 1
        raise NodeUnreachable(
            f"node {node_id}: no ack after {attempts} retransmission "
            f"attempt(s) ({wasted_ms:.3f} ms burned)",
            node_id=node_id, wasted_ms=wasted_ms,
        )
