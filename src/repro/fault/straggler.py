"""Gray-failure detection: EWMA straggler tracking for daemon pairs.

Binary failures earn hard verdicts (:class:`~repro.errors.DaemonDead`,
:class:`~repro.errors.NodeUnreachable`); a *gray* failure — a daemon
that keeps heartbeating but runs 5-50x slow — earns nothing from that
machinery, yet under BSP every superstep barrier waits for the slowest
pair.  The detector closes the gap:

* Every observed per-block compute/transfer duration is normalized by
  the device model's *expected* duration into an inflation ratio, and
  folded into a per-(daemon, phase) EWMA.  Normalizing first means a
  legitimately slow device in a heterogeneous cluster sits at inflation
  ~1.0 and is never flagged.
* A pair is compared against the cross-daemon *median* inflation
  (floored at 1.0, so a lone pair is judged against the cost model
  itself).  When the relative inflation exceeds ``ratio`` for
  ``patience`` consecutive observations, the detector issues a soft
  :class:`~repro.errors.StragglerVerdict` — recorded, never raised —
  and flags the daemon for the responses (speculative re-execution,
  online Lemma-2 re-estimation).
* ``patience`` consecutive healthy observations in every observed phase
  unflag the daemon again (gray failures are often transient).

Detection is pure bookkeeping on the simulated clock: it charges zero
simulated milliseconds, so enabling it cannot change a fault-free run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import SimulationError, StragglerVerdict

#: The two observable phases of a pair's pipeline work.
PHASES = ("compute", "transfer")


class StragglerDetector:
    """Per-daemon EWMA inflation tracking with median-relative verdicts."""

    def __init__(self, ratio: float = 3.0, patience: int = 3,
                 alpha: float = 0.5) -> None:
        if ratio <= 1.0:
            raise SimulationError(
                f"straggler ratio must be > 1 (a slowness multiple), "
                f"got {ratio}"
            )
        if patience < 1:
            raise SimulationError(
                f"straggler patience must be >= 1, got {patience}"
            )
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(
                f"EWMA alpha must be in (0, 1], got {alpha}"
            )
        self.ratio = float(ratio)
        self.patience = int(patience)
        self.alpha = float(alpha)
        #: (daemon_id, phase) -> EWMA of observed/expected duration
        self._ewma: Dict[Tuple[int, str], float] = {}
        self._slow_streak: Dict[Tuple[int, str], int] = {}
        self._healthy_streak: Dict[Tuple[int, str], int] = {}
        self._flagged: Set[int] = set()
        self.verdicts: List[StragglerVerdict] = []
        self.observations = 0
        self.recoveries = 0
        #: soft phase-budget overruns reported by the heartbeat monitor
        self.budget_overruns = 0
        # speculation accounting (filled in by the agents)
        self.speculative_wins = 0
        self.speculative_losses = 0
        self.speculative_wasted_ms = 0.0

    # -- observations -------------------------------------------------------

    def observe(self, daemon_id: int, phase: str, entities: int,
                observed_ms: float, expected_ms: float
                ) -> Optional[StragglerVerdict]:
        """Fold one observed duration into the pair's EWMA.

        ``expected_ms`` is what the device/transfer model predicts for
        the same work; the ratio of the two is what drifts when a gray
        failure hits.  Returns the verdict if this observation tipped
        the pair over, else ``None``.
        """
        if phase not in PHASES:
            raise SimulationError(
                f"unknown straggler phase {phase!r}; expected one of "
                f"{PHASES}"
            )
        if entities <= 0 or expected_ms <= 0.0:
            return None
        inflation = observed_ms / expected_ms
        key = (daemon_id, phase)
        prev = self._ewma.get(key)
        self._ewma[key] = (inflation if prev is None
                           else (1.0 - self.alpha) * prev
                           + self.alpha * inflation)
        self.observations += 1
        return self._evaluate(daemon_id, phase)

    def note_overrun(self, daemon_id: int, phase: str,
                     leased_ms: float, budget_ms: float) -> None:
        """A busy lease outlived its cost-model phase budget (monitor
        hook) — soft evidence only; counted, never acted on here."""
        self.budget_overruns += 1

    # -- queries ------------------------------------------------------------

    def inflation(self, daemon_id: int, phase: str) -> float:
        """The pair's current EWMA inflation (1.0 when unobserved)."""
        return self._ewma.get((daemon_id, phase), 1.0)

    def median_inflation(self, phase: str) -> float:
        """Cross-daemon median EWMA for ``phase``, floored at 1.0.

        The floor means a uniformly slow cluster (every pair inflated)
        is still flagged relative to the cost model, while a healthy
        heterogeneous cluster (every pair ~1.0 after normalization)
        never is.
        """
        values = [v for (d, p), v in self._ewma.items() if p == phase]
        if not values:
            return 1.0
        return max(1.0, float(np.median(values)))

    def relative_inflation(self, daemon_id: int, phase: str) -> float:
        """The pair's EWMA over the cross-daemon median reference."""
        ewma = self._ewma.get((daemon_id, phase))
        if ewma is None:
            return 1.0
        return ewma / self.median_inflation(phase)

    def is_straggler(self, daemon_id: int) -> bool:
        return daemon_id in self._flagged

    @property
    def flagged(self) -> List[int]:
        return sorted(self._flagged)

    # -- speculation accounting --------------------------------------------

    def record_win(self, wasted_ms: float) -> None:
        """A speculative copy finished first; ``wasted_ms`` is what the
        abandoned primary burned before being overtaken."""
        self.speculative_wins += 1
        self.speculative_wasted_ms += float(wasted_ms)

    def record_loss(self, wasted_ms: float) -> None:
        """The primary finished first; the backup's work is discarded."""
        self.speculative_losses += 1
        self.speculative_wasted_ms += float(wasted_ms)

    # -- lifecycle ----------------------------------------------------------

    def clear(self, daemon_id: int) -> None:
        """Forget a daemon entirely (respawn: its history is void)."""
        for phase in PHASES:
            self._ewma.pop((daemon_id, phase), None)
            self._slow_streak.pop((daemon_id, phase), None)
            self._healthy_streak.pop((daemon_id, phase), None)
        self._flagged.discard(daemon_id)

    # -- internals ----------------------------------------------------------

    def _evaluate(self, daemon_id: int, phase: str
                  ) -> Optional[StragglerVerdict]:
        key = (daemon_id, phase)
        rel = self.relative_inflation(daemon_id, phase)
        if rel >= self.ratio:
            streak = self._slow_streak.get(key, 0) + 1
            self._slow_streak[key] = streak
            self._healthy_streak[key] = 0
            if streak >= self.patience and daemon_id not in self._flagged:
                self._flagged.add(daemon_id)
                verdict = StragglerVerdict(
                    f"daemon {daemon_id}: {phase} running {rel:.1f}x "
                    f"slower than the cross-daemon median for {streak} "
                    f"consecutive blocks",
                    daemon_id=daemon_id, phase=phase, inflation=rel,
                    median=self.median_inflation(phase), streak=streak,
                )
                self.verdicts.append(verdict)
                return verdict
            return None
        self._slow_streak[key] = 0
        self._healthy_streak[key] = self._healthy_streak.get(key, 0) + 1
        if daemon_id in self._flagged and all(
                self._slow_streak.get((daemon_id, p), 0) == 0
                and self._healthy_streak.get((daemon_id, p), 0)
                >= self.patience
                for p in PHASES if (daemon_id, p) in self._ewma):
            self._flagged.discard(daemon_id)
            self.recoveries += 1
        return None
