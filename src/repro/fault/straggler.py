"""Gray-failure detection: EWMA straggler tracking for daemon pairs.

Binary failures earn hard verdicts (:class:`~repro.errors.DaemonDead`,
:class:`~repro.errors.NodeUnreachable`); a *gray* failure — a daemon
that keeps heartbeating but runs 5-50x slow — earns nothing from that
machinery, yet under BSP every superstep barrier waits for the slowest
pair.  The detector closes the gap:

* Every observed per-block compute/transfer duration is normalized by
  the device model's *expected* duration into an inflation ratio, and
  folded into a per-(daemon, phase) EWMA.  Normalizing first means a
  legitimately slow device in a heterogeneous cluster sits at inflation
  ~1.0 and is never flagged.
* A pair is compared against the cross-daemon *median* inflation
  (floored at 1.0, so a lone pair is judged against the cost model
  itself).  When the relative inflation exceeds ``ratio`` for
  ``patience`` consecutive observations, the detector issues a soft
  :class:`~repro.errors.StragglerVerdict` — recorded, never raised —
  and flags the daemon for the responses (speculative re-execution,
  online Lemma-2 re-estimation).
* ``patience`` consecutive healthy observations in every observed phase
  unflag the daemon again (gray failures are often transient).

The same machinery extends to the *network edge*: when a rack
:class:`~repro.cluster.topology.Topology` is wired in, the resilient
transport reports every node's observed vs healthy uplink fragment time
through :meth:`StragglerDetector.observe_link`.  Links keep their own
EWMAs, streaks, and flag set, judged against the *other* links' median
(exclude-self — with few links an inclusive median would let a lone slow
uplink drag the reference up and mask itself).  A flagged link feeds the
online Lemma-2 re-estimation exactly like a flagged daemon.

Detection is pure bookkeeping on the simulated clock: it charges zero
simulated milliseconds, so enabling it cannot change a fault-free run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import SimulationError, StragglerVerdict

#: The two observable phases of a pair's pipeline work.
PHASES = ("compute", "transfer")


class StragglerDetector:
    """Per-daemon EWMA inflation tracking with median-relative verdicts."""

    def __init__(self, ratio: float = 3.0, patience: int = 3,
                 alpha: float = 0.5,
                 link_ratio: Optional[float] = None) -> None:
        if ratio <= 1.0:
            raise SimulationError(
                f"straggler ratio must be > 1 (a slowness multiple), "
                f"got {ratio}"
            )
        if patience < 1:
            raise SimulationError(
                f"straggler patience must be >= 1, got {patience}"
            )
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(
                f"EWMA alpha must be in (0, 1], got {alpha}"
            )
        if link_ratio is not None and link_ratio <= 1.0:
            raise SimulationError(
                f"link ratio must be > 1 (a slowness multiple), "
                f"got {link_ratio}"
            )
        self.ratio = float(ratio)
        self.patience = int(patience)
        self.alpha = float(alpha)
        #: flag threshold for link inflation; defaults to ``ratio``
        self.link_ratio = (float(link_ratio) if link_ratio is not None
                           else float(ratio))
        #: (daemon_id, phase) -> EWMA of observed/expected duration
        self._ewma: Dict[Tuple[int, str], float] = {}
        self._slow_streak: Dict[Tuple[int, str], int] = {}
        self._healthy_streak: Dict[Tuple[int, str], int] = {}
        self._flagged: Set[int] = set()
        # per-link (node uplink) tracking, fed by the transport
        self._link_ewma: Dict[int, float] = {}
        self._link_slow_streak: Dict[int, int] = {}
        self._link_healthy_streak: Dict[int, int] = {}
        self._flagged_links: Set[int] = set()
        self.verdicts: List[StragglerVerdict] = []
        self.observations = 0
        self.recoveries = 0
        self.link_observations = 0
        self.link_verdicts = 0
        self.link_recoveries = 0
        #: soft phase-budget overruns reported by the heartbeat monitor
        self.budget_overruns = 0
        # speculation accounting (filled in by the agents)
        self.speculative_wins = 0
        self.speculative_losses = 0
        self.speculative_wasted_ms = 0.0

    # -- observations -------------------------------------------------------

    def observe(self, daemon_id: int, phase: str, entities: int,
                observed_ms: float, expected_ms: float
                ) -> Optional[StragglerVerdict]:
        """Fold one observed duration into the pair's EWMA.

        ``expected_ms`` is what the device/transfer model predicts for
        the same work; the ratio of the two is what drifts when a gray
        failure hits.  Returns the verdict if this observation tipped
        the pair over, else ``None``.
        """
        if phase not in PHASES:
            raise SimulationError(
                f"unknown straggler phase {phase!r}; expected one of "
                f"{PHASES}"
            )
        if entities <= 0 or expected_ms <= 0.0:
            return None
        inflation = observed_ms / expected_ms
        key = (daemon_id, phase)
        prev = self._ewma.get(key)
        self._ewma[key] = (inflation if prev is None
                           else (1.0 - self.alpha) * prev
                           + self.alpha * inflation)
        self.observations += 1
        return self._evaluate(daemon_id, phase)

    def observe_link(self, link_id: int, observed_ms: float,
                     expected_ms: float) -> Optional[StragglerVerdict]:
        """Fold one collective fragment's wire time into the link EWMA.

        ``link_id`` is the sending node (its uplink toward the root);
        ``expected_ms`` is the topology's healthy fragment cost for the
        same bytes.  The transport calls this for *every* node on every
        topology collective, so healthy links keep the exclude-self
        median honest.  Returns the verdict if this observation tipped
        the link over, else ``None``.
        """
        if expected_ms <= 0.0:
            return None
        inflation = observed_ms / expected_ms
        prev = self._link_ewma.get(link_id)
        self._link_ewma[link_id] = (inflation if prev is None
                                    else (1.0 - self.alpha) * prev
                                    + self.alpha * inflation)
        self.link_observations += 1
        return self._evaluate_link(link_id)

    def note_overrun(self, daemon_id: int, phase: str,
                     leased_ms: float, budget_ms: float) -> None:
        """A busy lease outlived its cost-model phase budget (monitor
        hook) — soft evidence only; counted, never acted on here."""
        self.budget_overruns += 1

    # -- queries ------------------------------------------------------------

    def inflation(self, daemon_id: int, phase: str) -> float:
        """The pair's current EWMA inflation (1.0 when unobserved)."""
        return self._ewma.get((daemon_id, phase), 1.0)

    def median_inflation(self, phase: str) -> float:
        """Cross-daemon median EWMA for ``phase``, floored at 1.0.

        The floor means a uniformly slow cluster (every pair inflated)
        is still flagged relative to the cost model, while a healthy
        heterogeneous cluster (every pair ~1.0 after normalization)
        never is.
        """
        values = [v for (d, p), v in self._ewma.items() if p == phase]
        if not values:
            return 1.0
        return max(1.0, float(np.median(values)))

    def relative_inflation(self, daemon_id: int, phase: str) -> float:
        """The pair's EWMA over the cross-daemon median reference."""
        ewma = self._ewma.get((daemon_id, phase))
        if ewma is None:
            return 1.0
        return ewma / self.median_inflation(phase)

    def is_straggler(self, daemon_id: int) -> bool:
        return daemon_id in self._flagged

    @property
    def flagged(self) -> List[int]:
        return sorted(self._flagged)

    def link_inflation(self, link_id: int) -> float:
        """The link's current EWMA inflation (1.0 when unobserved)."""
        return self._link_ewma.get(link_id, 1.0)

    def link_reference(self, link_id: int) -> float:
        """Median EWMA of the *other* links, floored at 1.0.

        Excluding the judged link matters with few links: in a two-node
        cluster an inclusive median of ``[1.0, 4.0]`` is 2.5, and a 4x
        uplink would sit at a relative 1.6 — below any sane ratio — and
        never be flagged.  Against the other link's 1.0 it reads 4x.
        """
        others = [v for k, v in self._link_ewma.items() if k != link_id]
        if not others:
            return 1.0
        return max(1.0, float(np.median(others)))

    def relative_link_inflation(self, link_id: int) -> float:
        """The link's EWMA over the exclude-self median reference."""
        ewma = self._link_ewma.get(link_id)
        if ewma is None:
            return 1.0
        return ewma / self.link_reference(link_id)

    def is_slow_link(self, link_id: int) -> bool:
        return link_id in self._flagged_links

    @property
    def flagged_links(self) -> List[int]:
        return sorted(self._flagged_links)

    # -- speculation accounting --------------------------------------------

    def record_win(self, wasted_ms: float) -> None:
        """A speculative copy finished first; ``wasted_ms`` is what the
        abandoned primary burned before being overtaken."""
        self.speculative_wins += 1
        self.speculative_wasted_ms += float(wasted_ms)

    def record_loss(self, wasted_ms: float) -> None:
        """The primary finished first; the backup's work is discarded."""
        self.speculative_losses += 1
        self.speculative_wasted_ms += float(wasted_ms)

    # -- lifecycle ----------------------------------------------------------

    def clear(self, daemon_id: int) -> None:
        """Forget a daemon entirely (respawn: its history is void)."""
        for phase in PHASES:
            self._ewma.pop((daemon_id, phase), None)
            self._slow_streak.pop((daemon_id, phase), None)
            self._healthy_streak.pop((daemon_id, phase), None)
        self._flagged.discard(daemon_id)

    # -- internals ----------------------------------------------------------

    def _evaluate(self, daemon_id: int, phase: str
                  ) -> Optional[StragglerVerdict]:
        key = (daemon_id, phase)
        rel = self.relative_inflation(daemon_id, phase)
        if rel >= self.ratio:
            streak = self._slow_streak.get(key, 0) + 1
            self._slow_streak[key] = streak
            self._healthy_streak[key] = 0
            if streak >= self.patience and daemon_id not in self._flagged:
                self._flagged.add(daemon_id)
                verdict = StragglerVerdict(
                    f"daemon {daemon_id}: {phase} running {rel:.1f}x "
                    f"slower than the cross-daemon median for {streak} "
                    f"consecutive blocks",
                    daemon_id=daemon_id, phase=phase, inflation=rel,
                    median=self.median_inflation(phase), streak=streak,
                )
                self.verdicts.append(verdict)
                return verdict
            return None
        self._slow_streak[key] = 0
        self._healthy_streak[key] = self._healthy_streak.get(key, 0) + 1
        if daemon_id in self._flagged and all(
                self._slow_streak.get((daemon_id, p), 0) == 0
                and self._healthy_streak.get((daemon_id, p), 0)
                >= self.patience
                for p in PHASES if (daemon_id, p) in self._ewma):
            self._flagged.discard(daemon_id)
            self.recoveries += 1
        return None

    def _evaluate_link(self, link_id: int) -> Optional[StragglerVerdict]:
        rel = self.relative_link_inflation(link_id)
        if rel >= self.link_ratio:
            streak = self._link_slow_streak.get(link_id, 0) + 1
            self._link_slow_streak[link_id] = streak
            self._link_healthy_streak[link_id] = 0
            if (streak >= self.patience
                    and link_id not in self._flagged_links):
                self._flagged_links.add(link_id)
                self.link_verdicts += 1
                verdict = StragglerVerdict(
                    f"link {link_id}: uplink fragments running {rel:.1f}x "
                    f"slower than the other links' median for {streak} "
                    f"consecutive collectives",
                    daemon_id=link_id, phase="link", inflation=rel,
                    median=self.link_reference(link_id), streak=streak,
                )
                self.verdicts.append(verdict)
                return verdict
            return None
        self._link_slow_streak[link_id] = 0
        self._link_healthy_streak[link_id] = (
            self._link_healthy_streak.get(link_id, 0) + 1)
        if (link_id in self._flagged_links
                and self._link_healthy_streak[link_id] >= self.patience):
            self._flagged_links.discard(link_id)
            self.link_recoveries += 1
        return None
