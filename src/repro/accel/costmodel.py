"""Device cost models.

The paper's analysis treats devices through a small set of linear
coefficients (Eq. 2): a fixed per-kernel-call overhead ``a`` (T_call) and
per-entity compute/copy costs (T_comp, T_copy).  A
:class:`DeviceCostModel` is exactly that parameterization plus the two
properties the evaluation depends on: parallel *width* (20-thread CPU vs
1024-thread GPU accelerator abstraction, §V-A) and memory capacity (the
Fig. 9(b) OOM behaviour).

All times are simulated milliseconds; all sizes are simulated bytes.  The
scaled datasets are ~1/1000 of the paper's graphs, so memory capacities are
scaled by the same factor (a "16 GB" V100 becomes 16 MB simulated).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DeviceError

BYTES_PER_EDGE = 16    # edge triplet entry: src, dst, weight, attribute
BYTES_PER_VERTEX = 8   # vertex attribute entry


@dataclass(frozen=True)
class DeviceCostModel:
    """Linear cost model of one computation device.

    Parameters
    ----------
    name:
        Human-readable device family ("v100", "xeon-accel", "host-jvm"...).
    init_ms:
        One-time device/context initialization cost.  Paid once per daemon
        under runtime isolation (§IV-C), once per *call* without it (Fig 13).
    call_ms:
        Fixed cost of invoking a kernel — the ``a``/``T_call`` of Eq. 2.
    compute_ms_per_entity:
        Per edge-triplet compute time (``T_comp`` slope).  Already reflects
        the device's parallel width: wider devices have smaller slopes.
    copy_ms_per_entity:
        Per-entity host<->device staging time (``T_copy`` slope).
    threads:
        Parallel width of the multithread processing model (§V-A: CPU
        accelerator = 20, GPU accelerator = 1024).
    memory_bytes:
        Device memory capacity for working-set admission checks.
    """

    name: str
    init_ms: float
    call_ms: float
    compute_ms_per_entity: float
    copy_ms_per_entity: float
    threads: int
    memory_bytes: int

    def __post_init__(self) -> None:
        if self.init_ms < 0 or self.call_ms < 0:
            raise DeviceError(f"{self.name}: negative fixed cost")
        if self.compute_ms_per_entity < 0 or self.copy_ms_per_entity < 0:
            raise DeviceError(f"{self.name}: negative per-entity cost")
        if self.threads < 1:
            raise DeviceError(f"{self.name}: needs >=1 threads")
        if self.memory_bytes < 0:
            raise DeviceError(f"{self.name}: negative memory")

    @property
    def per_entity_ms(self) -> float:
        """Combined per-entity slope (compute + copy) — the paper's k2."""
        return self.compute_ms_per_entity + self.copy_ms_per_entity

    def kernel_ms(self, num_entities: int) -> float:
        """T_c(b) = T_call + T_comp(b) + T_copy(b)  (Eq. 2)."""
        if num_entities < 0:
            raise DeviceError(f"negative entity count {num_entities}")
        return self.call_ms + num_entities * self.per_entity_ms

    def capacity_factor(self) -> float:
        """The paper's 1/c_j: entities processed per unit time (§III-C)."""
        return 1.0 / self.per_entity_ms

    def scaled(self, factor: float, name: str = "") -> "DeviceCostModel":
        """A device ``factor`` times faster (per-entity costs divided)."""
        if factor <= 0:
            raise DeviceError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            compute_ms_per_entity=self.compute_ms_per_entity / factor,
            copy_ms_per_entity=self.copy_ms_per_entity / factor,
        )


# -- presets ------------------------------------------------------------------
#
# Calibrated so the figure benches reproduce the paper's *shapes*:
# GPU+engine up to ~7-25x over host compute, CPU accelerator ~4-10x,
# Twitter/UK-2007 twins overflow a single GPU (Fig 9(b)), and device init
# dominates naive per-call integration (Fig 13).

#: NVIDIA V100 stand-in: 1024-thread model, 20 MB simulated memory
#: (16 GB scaled by roughly the dataset scale factor; slightly above
#: 16 MB so the Fig. 9(b) fit/overflow boundary lands where the paper's
#: does: Orkut fits one GPU, Twitter/UK-2007 do not, and UK-2007 stops
#: fitting the *distributed* systems at 4 GPUs).
V100 = DeviceCostModel(
    name="v100",
    init_ms=50.0,
    call_ms=0.6,
    compute_ms_per_entity=0.00050,
    copy_ms_per_entity=0.00010,
    threads=1024,
    memory_bytes=20_000_000,
)

#: 20-core Xeon E5-2698 v4 used *as an accelerator* (20-thread model).
XEON_ACCEL = DeviceCostModel(
    name="xeon-accel",
    init_ms=8.0,
    call_ms=0.25,
    compute_ms_per_entity=0.00240,
    copy_ms_per_entity=0.00010,
    threads=20,
    memory_bytes=256_000_000,
)

#: Host execution inside PowerGraph's native C++ runtime (no accelerator).
HOST_NATIVE = DeviceCostModel(
    name="host-native",
    init_ms=0.0,
    call_ms=0.05,
    compute_ms_per_entity=0.01200,
    copy_ms_per_entity=0.0,
    threads=1,
    memory_bytes=1_000_000_000,
)

#: Host execution inside GraphX's JVM runtime: slower per entity
#: (boxing, serialization, GC) — this is what makes middleware gains
#: larger on GraphX than on PowerGraph in Fig 8 / Fig 11(a).
HOST_JVM = DeviceCostModel(
    name="host-jvm",
    init_ms=0.0,
    call_ms=0.15,
    compute_ms_per_entity=0.02000,
    copy_ms_per_entity=0.0,
    threads=1,
    memory_bytes=1_000_000_000,
)

PRESETS = {
    "v100": V100,
    "xeon-accel": XEON_ACCEL,
    "host-native": HOST_NATIVE,
    "host-jvm": HOST_JVM,
}
