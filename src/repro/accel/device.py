"""Simulated accelerator devices.

An :class:`Accelerator` executes real numpy kernels while charging
*simulated* time from its :class:`~repro.accel.costmodel.DeviceCostModel`.
The daemon drives it through a load/compute/store cycle (the paper's
``com_dev.Load / com_dev.Compute`` of Algorithm 1) and sleeps for the
durations the device reports, so computation results are real but timing is
deterministic.

Lifecycle (§IV-C runtime isolation): a device must be initialized before
use.  ``init()`` returns the initialization cost; under the daemon-agent
framework it is paid once, whereas a naively integrated system pays it per
call — the comparison of Fig. 13.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..errors import DeviceError, DeviceFailure, DeviceMemoryError
from .costmodel import DeviceCostModel


class Accelerator:
    """One simulated computation device (GPU or multicore CPU)."""

    def __init__(self, model: DeviceCostModel, device_id: int = 0) -> None:
        self.model = model
        self.device_id = device_id
        self._initialized = False
        self._resident_bytes = 0
        self._fail_after: Optional[int] = None
        # instrumentation
        self.init_count = 0
        self.kernel_count = 0
        self.entities_processed = 0
        self.failure_count = 0

    # -- fault injection -----------------------------------------------------

    def inject_failure(self, after_kernels: int = 0) -> None:
        """Arm a one-shot fault: the device crashes on the kernel launched
        after ``after_kernels`` more successful launches.

        A crash loses the device context (re-initialization required) —
        the failure-recovery tests drive the daemon-agent framework
        through exactly this.
        """
        if after_kernels < 0:
            raise DeviceError(f"negative countdown {after_kernels}")
        self._fail_after = after_kernels

    def _maybe_fail(self) -> None:
        if self._fail_after is None:
            return
        if self._fail_after > 0:
            self._fail_after -= 1
            return
        self._fail_after = None
        self._initialized = False
        self._resident_bytes = 0
        self.failure_count += 1
        raise DeviceFailure(
            f"{self.model.name}[{self.device_id}]: device fault injected"
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._initialized

    def init(self) -> float:
        """Initialize the device context; returns the simulated cost in ms."""
        self._initialized = True
        self.init_count += 1
        return self.model.init_ms

    def shutdown(self) -> None:
        """Release the device context (forces re-init before next use)."""
        self._initialized = False
        self._resident_bytes = 0

    # -- memory ---------------------------------------------------------------

    def ensure_capacity(self, nbytes: int) -> None:
        """Admission check: raise if ``nbytes`` exceeds device memory.

        Reproduces Fig. 9(b): single-GPU systems overflow on graphs larger
        than device memory.
        """
        if nbytes < 0:
            raise DeviceError(f"negative allocation {nbytes}")
        if nbytes > self.model.memory_bytes:
            raise DeviceMemoryError(
                f"{self.model.name}[{self.device_id}]: working set "
                f"{nbytes} B exceeds device memory {self.model.memory_bytes} B"
            )

    def allocate(self, nbytes: int) -> None:
        """Reserve resident device memory (graph blocks, frontier, ...)."""
        self.ensure_capacity(self._resident_bytes + nbytes)
        self._resident_bytes += nbytes

    def free(self, nbytes: Optional[int] = None) -> None:
        """Release ``nbytes`` (or everything) of resident memory."""
        if nbytes is None:
            self._resident_bytes = 0
            return
        if nbytes < 0 or nbytes > self._resident_bytes:
            raise DeviceError(
                f"cannot free {nbytes} B of {self._resident_bytes} B resident"
            )
        self._resident_bytes -= nbytes

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    # -- execution --------------------------------------------------------------

    def kernel_ms(self, num_entities: int) -> float:
        """Simulated duration of a kernel over ``num_entities`` entities."""
        return self.model.kernel_ms(num_entities)

    def run(self, kernel: Callable[..., Any], *args: Any,
            entities: int, **kwargs: Any) -> Tuple[Any, float]:
        """Execute ``kernel(*args, **kwargs)`` on the device.

        Returns ``(result, simulated_duration_ms)``.  The caller (daemon)
        is responsible for sleeping the returned duration on the simulated
        clock.  Raises :class:`DeviceError` if the device was never
        initialized — the bug runtime isolation exists to prevent.
        """
        if not self._initialized:
            raise DeviceError(
                f"{self.model.name}[{self.device_id}]: compute before init"
            )
        if entities < 0:
            raise DeviceError(f"negative entity count {entities}")
        self._maybe_fail()
        result = kernel(*args, **kwargs)
        self.kernel_count += 1
        self.entities_processed += entities
        return result, self.kernel_ms(entities)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Accelerator({self.model.name!r}, id={self.device_id}, "
                f"init={self._initialized})")
