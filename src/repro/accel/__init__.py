"""Simulated accelerators (GPUs, multicore CPUs) and their cost models."""

from .costmodel import (
    BYTES_PER_EDGE,
    BYTES_PER_VERTEX,
    HOST_JVM,
    HOST_NATIVE,
    PRESETS,
    V100,
    XEON_ACCEL,
    DeviceCostModel,
)
from .device import Accelerator


def make_gpu(device_id: int = 0) -> Accelerator:
    """A V100-class simulated GPU (1024-thread model, 16 MB scaled memory)."""
    return Accelerator(V100, device_id)


def make_cpu_accelerator(device_id: int = 0) -> Accelerator:
    """A 20-thread Xeon used as an accelerator (§V-A)."""
    return Accelerator(XEON_ACCEL, device_id)


__all__ = [
    "DeviceCostModel",
    "Accelerator",
    "V100",
    "XEON_ACCEL",
    "HOST_NATIVE",
    "HOST_JVM",
    "PRESETS",
    "BYTES_PER_EDGE",
    "BYTES_PER_VERTEX",
    "make_gpu",
    "make_cpu_accelerator",
]
