"""Plain-text reporting helpers for the benchmark harness.

Each figure bench prints the same rows/series the paper plots, as aligned
text tables, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
full evaluation section on stdout.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                title: Optional[str] = None) -> None:
    print()
    print(format_table(headers, rows, title))
    print()


def _fmt(cell: Any) -> str:
    if cell is None:
        return "OOM"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def speedup(baseline_ms: float, other_ms: float) -> float:
    """How many times faster ``other`` is than ``baseline``."""
    if other_ms <= 0:
        return float("inf")
    return baseline_ms / other_ms


def bar_chart(rows: Sequence[Sequence[Any]], width: int = 40,
              title: Optional[str] = None) -> str:
    """Render ``(label, value)`` rows as a horizontal ASCII bar chart.

    ``None`` values render as an OOM marker (the Fig. 9(b) convention).
    """
    labeled = [(str(label), value) for label, value in rows]
    numeric = [v for _label, v in labeled if v is not None]
    top = max(numeric) if numeric else 1.0
    label_w = max((len(label) for label, _v in labeled), default=0)
    lines = [] if title is None else [title]
    for label, value in labeled:
        if value is None:
            lines.append(f"{label.ljust(label_w)} | {'x' * 3} OOM")
            continue
        length = 0 if top <= 0 else int(round(width * value / top))
        bar = "#" * max(length, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {_fmt(value)}")
    return "\n".join(lines)


def print_bar_chart(rows: Sequence[Sequence[Any]], width: int = 40,
                    title: Optional[str] = None) -> None:
    print()
    print(bar_chart(rows, width=width, title=title))
    print()
