"""Run telemetry: export engine results as structured records.

Turns a :class:`~repro.engines.base.RunResult` into plain dict/CSV/JSON
records — one per superstep — so runs can be logged, plotted, or diffed
outside Python.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from ..engines.base import RunResult

FIELDS = [
    "iteration", "active_edges", "compute_ms", "apply_ms", "sync_ms",
    "total_ms", "skipped", "local_iterations", "changed_vertices",
    "uploads", "cache_hits", "cache_misses",
    "faults_injected", "retries", "recoveries", "checkpoint_ms",
    "retransmits", "dup_drops", "net_wasted_ms",
]


def iteration_records(result: RunResult) -> List[Dict]:
    """One plain dict per superstep, in order."""
    records = []
    for s in result.stats:
        records.append({
            "iteration": s.index,
            "active_edges": s.active_edges,
            "compute_ms": round(s.compute_ms, 6),
            "apply_ms": round(s.apply_ms, 6),
            "sync_ms": round(s.sync_ms, 6),
            "total_ms": round(s.total_ms, 6),
            "skipped": s.skipped,
            "local_iterations": s.local_iterations,
            "changed_vertices": s.changed_vertices,
            "uploads": s.uploads,
            "cache_hits": s.cache_hits,
            "cache_misses": s.cache_misses,
            "faults_injected": s.faults_injected,
            "retries": s.retries,
            "recoveries": s.recoveries,
            "checkpoint_ms": round(s.checkpoint_ms, 6),
            "retransmits": s.retransmits,
            "dup_drops": s.dup_drops,
            "net_wasted_ms": round(s.net_wasted_ms, 6),
        })
    return records


def run_summary(result: RunResult) -> Dict:
    """The run-level header record."""
    return {
        "engine": result.engine_name,
        "algorithm": result.algorithm_name,
        "iterations": result.iterations,
        "computation_iterations": result.computation_iterations,
        "skipped_iterations": result.skipped_iterations,
        "converged": result.converged,
        "total_ms": round(result.total_ms, 6),
        "setup_ms": round(result.setup_ms, 6),
        "middleware_ratio": round(result.middleware_ratio, 6),
        "rollbacks": result.rollbacks,
        "wasted_ms": round(result.wasted_ms, 6),
        "degraded_nodes": list(result.degraded_nodes),
        "rebalance_events": result.rebalance_events,
        "rebalance_ms": round(result.rebalance_ms, 6),
        "retransmits": result.retransmits,
        "dup_drops": result.dup_drops,
        "net_wasted_ms": round(result.net_wasted_ms, 6),
        "straggler_verdicts": result.straggler_verdicts,
        "speculative_wins": result.speculative_wins,
        "speculative_losses": result.speculative_losses,
        "speculative_wasted_ms": round(result.speculative_wasted_ms, 6),
        "budget_overruns": result.budget_overruns,
        "coeff_updates": result.coeff_updates,
        "online_rebalances": result.online_rebalances,
        "link_verdicts": result.link_verdicts,
        "link_slow_ms": round(result.link_slow_ms, 6),
        "sched_events": result.sched_events,
        "sched_batches": result.sched_batches,
        "sched_max_batch": result.sched_max_batch,
        "sched_heap_peak": result.sched_heap_peak,
        "breakdown": {k: round(v, 6)
                      for k, v in sorted(result.breakdown.items())},
    }


def write_csv(result: RunResult, path) -> None:
    """Write the per-iteration records as CSV."""
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.DictWriter(f, fieldnames=FIELDS)
        writer.writeheader()
        for record in iteration_records(result):
            writer.writerow(record)


def write_json(result: RunResult, path, campaign: Dict = None,
               cluster_spec: Dict = None, job: Dict = None) -> None:
    """Write summary + per-iteration records as one JSON document.

    ``campaign`` — optional fault-campaign parameters (seed, rate,
    kinds) recorded verbatim under a ``"fault_campaign"`` key so a
    faulted run can be replayed exactly from its trace file.
    ``cluster_spec`` — the resolved cluster description (a
    :meth:`~repro.core.config.ClusterSpec.to_dict` dict) recorded
    verbatim under the summary's ``"cluster_spec"`` key so the trace
    pins the exact hardware/topology the numbers were simulated on.
    ``job`` — optional serving-layer job record (a
    :meth:`~repro.serve.job.Job.describe` dict) recorded verbatim
    under a top-level ``"job"`` key, making the trace per-job: which
    tenant asked, what they asked for, and how the job fared in the
    queue.
    """
    summary = run_summary(result)
    if cluster_spec is not None:
        summary["cluster_spec"] = cluster_spec
    doc = {"summary": summary,
           "iterations": iteration_records(result)}
    if job is not None:
        doc["job"] = job
    if campaign is not None:
        doc["fault_campaign"] = campaign
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)


def read_json(path) -> Dict:
    """Load a document written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)
