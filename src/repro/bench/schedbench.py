"""Scheduler-bound wall-clock benchmark: simulated events/sec.

The hot-path bench (:mod:`repro.bench.hotpath`) measures the vectorized
numeric pipeline; this one measures the *event loop* itself.  It builds
a synthetic 1000-node twin round protocol that is pure scheduler
traffic — token fan-out, per-fragment block delivery to a root
collector, barrier waves — with no numeric work, so wall time is
entirely command dispatch and event-heap traffic.

The same protocol runs twice:

* **per-event baseline** — :class:`~repro.ipc.Scheduler` with one
  ``Send``/``Recv`` command per fragment and token;
* **batched** — :class:`~repro.ipc.BatchedScheduler` with ``SendMany``
  token/fragment enqueues and a ``DrainReady`` collector, the shape the
  middleware's transport uses under ``batch_events``.

Both modes simulate the *identical* logical event stream (equal final
simulated times, equal per-phase event counts), so events/sec is
computed against one shared logical-event denominator and the speedup
is a pure event-loop win.  Results merge into ``BENCH_hotpath.json``
(``scheduler`` / ``sched-smoke`` entries) and gate in CI.
"""

from __future__ import annotations

import platform
import time
from typing import Dict, Optional

from ..errors import BenchmarkError
from ..ipc import (Barrier, BatchedScheduler, Channel, DrainReady, Recv,
                   Scheduler, Send, SendMany, Sleep, WaitBarrier)

#: Default twin shape: 1000 nodes x 48 edge-block fragments per round.
#: Each fragment stands for an edge block of ~125 simulated edges, so
#: the twin models a 6M-edge graph (the ROADMAP's 100x-scale target)
#: while the bench itself stays pure control flow.
DEFAULT_NODES = 1_000
DEFAULT_FRAGMENTS = 48
DEFAULT_ROUNDS = 5
EDGES_PER_FRAGMENT = 125


def _twin(sched_cls, nodes: int, fragments: int, rounds: int,
          batched: bool):
    """Run one twin protocol; returns the scheduler (for its counters)."""
    sched = sched_cls()
    frag_ch = Channel("frags", latency=0.05)
    token_ch = Channel("tokens", latency=0.05)
    bar = Barrier(nodes + 1, name="superstep")

    def node_proc(i):
        jitter = 1.0 + (i % 7) * 0.01
        # pre-build the block metadata so the timed loop is pure
        # scheduler traffic in both modes
        blocks_by_round = [[(i, r, f) for f in range(fragments)]
                           for r in range(rounds)]
        for r in range(rounds):
            yield Recv(token_ch)            # root's go-token
            yield Sleep(jitter, "compute")  # the compute window
            blocks = blocks_by_round[r]
            if batched:
                yield SendMany(frag_ch, blocks)
            else:
                for block in blocks:
                    yield Send(frag_ch, block)
            yield WaitBarrier(bar)

    def root_proc():
        for r in range(rounds):
            if batched:
                yield SendMany(token_ch, [r] * nodes)
                need = nodes * fragments
                while need > 0:
                    got = yield DrainReady(frag_ch)
                    need -= len(got)
            else:
                for _ in range(nodes):
                    yield Send(token_ch, r)
                for _ in range(nodes * fragments):
                    yield Recv(frag_ch)
            yield WaitBarrier(bar)

    for i in range(nodes):
        sched.spawn(node_proc(i), name=f"node{i}")
    sched.spawn(root_proc(), name="root")
    sched.run()
    return sched


def run_scheduler_bench(nodes: int = DEFAULT_NODES,
                        fragments: int = DEFAULT_FRAGMENTS,
                        rounds: int = DEFAULT_ROUNDS,
                        repeats: int = 1) -> Dict:
    """Run the scheduler bench; returns a ``BENCH_hotpath.json`` payload.

    ``repeats`` re-runs each mode and keeps the fastest wall time.
    """
    if nodes < 1 or fragments < 1 or rounds < 1:
        raise BenchmarkError(
            f"scheduler bench needs positive sizes, got nodes={nodes} "
            f"fragments={fragments} rounds={rounds}")
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")

    modes = {}
    for label, sched_cls, batched in (
            ("per_event", Scheduler, False),
            ("batched", BatchedScheduler, True)):
        best: Optional[Dict] = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            sched = _twin(sched_cls, nodes, fragments, rounds, batched)
            wall_s = time.perf_counter() - t0
            row = {
                "wall_s": wall_s,
                "events_popped": sched.events_popped,
                "batches": sched.batches,
                "max_batch": sched.max_batch,
                "heap_peak": sched.heap_peak,
                "simulated_ms": sched.clock.now,
            }
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        modes[label] = best

    if modes["per_event"]["simulated_ms"] != modes["batched"]["simulated_ms"]:
        raise BenchmarkError(
            "batched scheduler diverged from the per-event oracle: "
            f"{modes['batched']['simulated_ms']} != "
            f"{modes['per_event']['simulated_ms']} simulated ms")

    # one shared logical-event denominator: the oracle's popped events
    logical = modes["per_event"]["events_popped"]
    for row in modes.values():
        row["events_per_sec"] = (logical / row["wall_s"]
                                 if row["wall_s"] > 0 else float("inf"))
    speedup = (modes["per_event"]["wall_s"] / modes["batched"]["wall_s"]
               if modes["batched"]["wall_s"] > 0 else float("inf"))

    # logical events per protocol phase (identical in both modes)
    phase_events = {
        "spawn": nodes + 1,
        "token_delivery": nodes * rounds,
        "compute_wake": nodes * rounds,
        "fragment_delivery": nodes * fragments * rounds,
        "barrier_wake": nodes * rounds,
    }
    return {
        "bench": "scheduler",
        "params": {
            "nodes": nodes,
            "fragments": fragments,
            "rounds": rounds,
            "twin_edges": nodes * fragments * EDGES_PER_FRAGMENT,
            "repeats": repeats,
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": modes,
        "phase_events": phase_events,
        "aggregate": {
            "logical_events": logical,
            "wall_s": modes["batched"]["wall_s"],
            "events_per_sec": modes["batched"]["events_per_sec"],
            "speedup_vs_per_event": round(speedup, 2),
        },
    }


def format_scheduler_report(payload: Dict) -> list:
    """Human-readable lines for one scheduler bench payload."""
    p = payload["params"]
    lines = [
        f"scheduler bench: {p['nodes']} nodes x {p['fragments']} "
        f"fragments x {p['rounds']} rounds "
        f"(~{p['twin_edges']:,} twin edges)"]
    for label, row in payload["results"].items():
        lines.append(
            f"  {label:10s} {row['events_per_sec']:>12,.0f} events/s  "
            f"wall={row['wall_s']:.3f}s  batches={row['batches']:,}  "
            f"max_cohort={row['max_batch']}  heap_peak={row['heap_peak']}")
    agg = payload["aggregate"]
    lines.append(
        f"  {'aggregate':10s} {agg['events_per_sec']:>12,.0f} events/s  "
        f"({agg['speedup_vs_per_event']}x vs per-event)")
    for phase, count in payload["phase_events"].items():
        lines.append(f"    phase {phase:18s} {count:>10,} events")
    return lines
