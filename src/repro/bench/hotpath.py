"""Wall-clock hot-path benchmark: edges/sec on parameterized R-MAT graphs.

Every other bench in this repository reports *simulated* milliseconds —
the number the paper's cost models produce, deliberately independent of
how fast the Python middleware itself runs.  This module measures the
orthogonal quantity: real wall-clock throughput of the synchronization
hot path (``repro.core.sync_cache``, the agent's scatter/gather paths and
the engines' merge loops), so a regression in the *implementation* is
visible even when the simulated figures are bit-identical.

``repro-gxplug bench`` runs PageRank / SSSP / CC on an R-MAT graph with a
capacity-bounded vertex cache (the regime the slot cache is built for),
reports edges/sec plus the per-phase wall-time breakdown the engine
accounts via ``time.perf_counter`` (gen / merge / apply / sync / cache),
and writes ``BENCH_hotpath.json`` so the throughput trajectory is tracked
commit over commit.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from ..algorithms import ConnectedComponents, MultiSourceSSSP, PageRank
from ..cluster import NATIVE_RUNTIME, make_cluster
from ..core import GXPlug, MiddlewareConfig
from ..engines import PowerGraphEngine
from ..errors import BenchmarkError
from ..graph.generators import rmat

#: Schema tag stamped into BENCH_hotpath.json documents.
BENCH_SCHEMA = "gxplug-hotpath-bench/1"

#: Default R-MAT shape: big enough that per-vertex Python overhead is the
#: dominant cost on the unvectorized paths, small enough for CI.
DEFAULT_VERTICES = 20_000
DEFAULT_EDGES = 120_000

#: Named parameter sets.  ``default`` is the acceptance shape whose
#: trajectory BENCH_hotpath.json tracks; ``smoke`` is the tiny graph the
#: CI ``bench-smoke`` job gates on.  The ``scheduler`` profiles run the
#: event-loop bench (:mod:`repro.bench.schedbench`) instead of the
#: numeric hot path: ``scheduler`` is the 1000-node acceptance twin,
#: ``sched-smoke`` the trimmed shape the ``sched-bench-smoke`` CI job
#: gates on.
PROFILES = {
    "default": {"vertices": DEFAULT_VERTICES, "edges": DEFAULT_EDGES},
    "smoke": {"vertices": 2_000, "edges": 10_000},
    "scheduler": {"kind": "scheduler", "nodes": 1_000, "fragments": 48,
                  "rounds": 5},
    "sched-smoke": {"kind": "scheduler", "nodes": 120, "fragments": 16,
                    "rounds": 4},
}

#: The acceptance workloads (§V-A's compute-intensive trio, minus LP
#: whose composite merge key makes edges/sec incomparable).
DEFAULT_ALGORITHMS = ("pagerank", "sssp-bf", "cc")

#: Iteration budgets: fixed so pre/post comparisons process identical
#: work (PageRank never converges on its own; SSSP/CC usually finish
#: earlier and simply stop there deterministically).
ITERATION_CAPS = {"pagerank": 5, "sssp-bf": 10, "cc": 10}


def _algorithm(name: str):
    if name == "pagerank":
        return PageRank()
    if name == "sssp-bf":
        return MultiSourceSSSP(sources=(0, 1, 2, 3))
    if name == "cc":
        return ConnectedComponents()
    raise BenchmarkError(f"unknown bench algorithm {name!r} "
                         f"(choose from {', '.join(DEFAULT_ALGORITHMS)})")


def run_hotpath_bench(vertices: int = DEFAULT_VERTICES,
                      edges: int = DEFAULT_EDGES,
                      algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                      nodes: int = 2, gpus: int = 1,
                      cache_fraction: float = 0.1,
                      seed: int = 7,
                      repeats: int = 1) -> Dict:
    """Run the hot-path bench; returns the ``BENCH_hotpath.json`` payload.

    ``cache_fraction`` bounds the agents' vertex-cache capacity to that
    fraction of |V| (the acceptance regime is >= 0.1), forcing the
    slot cache through its eviction and miss-fill paths.  ``repeats``
    re-runs each workload and keeps the *fastest* wall time — standard
    practice for wall-clock micro-benchmarks on noisy machines.
    """
    if vertices < 1 or edges < 1:
        raise BenchmarkError(
            f"bench needs a non-empty graph, got |V|={vertices} "
            f"|E|={edges}")
    if not 0.0 < cache_fraction <= 1.0:
        raise BenchmarkError(
            f"cache_fraction must be in (0, 1], got {cache_fraction}")
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    graph = rmat(vertices, edges, seed=seed, name="bench-rmat")
    capacity = max(1, int(cache_fraction * vertices))
    config = MiddlewareConfig(cache_capacity=capacity)
    results: Dict[str, Dict] = {}
    for name in algorithms:
        cap = ITERATION_CAPS.get(name)
        best: Optional[Dict] = None
        for _ in range(repeats):
            cluster = make_cluster(nodes, gpus_per_node=gpus,
                                   runtime=NATIVE_RUNTIME)
            middleware = GXPlug(cluster, config)
            engine = PowerGraphEngine.build(graph, cluster,
                                            middleware=middleware)
            algorithm = _algorithm(name)
            t0 = time.perf_counter()
            result = engine.run(algorithm, max_iterations=cap)
            wall_s = time.perf_counter() - t0
            # edges processed = every triplet an edge pass consumed,
            # including the extra local iterations sync-skip runs
            edges_done = sum(s.active_edges * max(s.local_iterations, 1)
                             for s in result.stats)
            run_row = {
                "iterations": result.iterations,
                "edges_processed": int(edges_done),
                "wall_s": wall_s,
                "edges_per_sec": edges_done / wall_s if wall_s > 0
                else float("inf"),
                "phase_wall_s": {k: round(v, 6)
                                 for k, v in result.wall_s.items()},
                "simulated_ms": result.total_ms,
                "converged": result.converged,
            }
            if best is None or run_row["wall_s"] < best["wall_s"]:
                best = run_row
        results[name] = best
    total_edges = sum(r["edges_processed"] for r in results.values())
    total_wall = sum(r["wall_s"] for r in results.values())
    return {
        "bench": "hotpath",
        "params": {
            "vertices": vertices,
            "edges": edges,
            "nodes": nodes,
            "gpus": gpus,
            "cache_capacity": capacity,
            "cache_fraction": cache_fraction,
            "seed": seed,
            "repeats": repeats,
            "engine": "powergraph",
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
        "aggregate": {
            "edges_processed": int(total_edges),
            "wall_s": total_wall,
            "edges_per_sec": total_edges / total_wall if total_wall > 0
            else float("inf"),
        },
    }


def format_report(payload: Dict) -> List[str]:
    """Human-readable lines for one bench payload."""
    lines = []
    p = payload["params"]
    lines.append(
        f"hot-path bench: R-MAT |V|={p['vertices']} |E|={p['edges']}, "
        f"{p['nodes']} nodes x {p['gpus']} GPU, cache {p['cache_capacity']} "
        f"({p['cache_fraction']:.0%} of |V|)")
    for name, row in payload["results"].items():
        phases = " ".join(f"{k}={v:.3f}s"
                          for k, v in row["phase_wall_s"].items())
        lines.append(
            f"  {name:10s} {row['edges_per_sec']:>12,.0f} edges/s  "
            f"wall={row['wall_s']:.3f}s  iters={row['iterations']}  "
            f"[{phases}]")
    agg = payload["aggregate"]
    lines.append(f"  {'aggregate':10s} {agg['edges_per_sec']:>12,.0f} "
                 f"edges/s  wall={agg['wall_s']:.3f}s")
    return lines


def load_bench_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise BenchmarkError(
            f"{path}: not a {BENCH_SCHEMA} document "
            f"(schema={doc.get('schema')!r})")
    return doc


def write_bench_json(doc: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def _throughput(aggregate: Dict) -> tuple:
    """The ``(metric key, value)`` of a bench aggregate: edges/s for the
    hot-path bench, events/s for the scheduler bench."""
    for key in ("edges_per_sec", "events_per_sec"):
        if key in aggregate:
            return key, aggregate[key]
    raise BenchmarkError(
        f"bench aggregate has no throughput metric "
        f"(keys: {', '.join(sorted(aggregate)) or 'none'})")


def merge_entry(doc: Optional[Dict], name: str, payload: Dict) -> Dict:
    """Insert/replace entry ``name`` in a bench document (created if
    needed); keeps every other entry (including ``pre_pr``) intact so the
    file accumulates the throughput trajectory."""
    if doc is None:
        doc = {"schema": BENCH_SCHEMA, "entries": {}}
    entries = doc.setdefault("entries", {})
    entries[name] = payload
    pre = entries.get("pre_pr")
    if pre is not None and name != "pre_pr":
        cur_key, cur = _throughput(payload["aggregate"])
        old_key, old = _throughput(pre["aggregate"])
        # cross-metric speedups are meaningless (scheduler entries vs
        # the edges/s pre_pr baseline), so only annotate like-for-like
        if cur_key == old_key and old > 0:
            payload["speedup_vs_pre_pr"] = round(cur / old, 2)
    return doc


def check_regression(doc: Dict, name: str, payload: Dict,
                     max_regression: float) -> str:
    """Gate ``payload`` against the committed entry ``name``.

    Returns a human-readable verdict; raises :class:`BenchmarkError`
    when aggregate throughput regressed by more than ``max_regression``
    (a fraction, e.g. 0.3 = 30%).  Works for both bench families —
    the metric (edges/s or events/s) is taken from the committed entry.
    """
    entries = doc.get("entries", {})
    if name not in entries:
        raise BenchmarkError(
            f"no committed bench entry {name!r} to check against "
            f"(have: {', '.join(sorted(entries)) or 'none'})")
    key, old = _throughput(entries[name]["aggregate"])
    if key not in payload["aggregate"]:
        raise BenchmarkError(
            f"bench payload has no {key!r} to check against entry "
            f"{name!r} (did the profile change bench family?)")
    new = payload["aggregate"][key]
    unit = key.replace("_per_sec", "") + "/s"
    if old <= 0:
        raise BenchmarkError(f"committed entry {name!r} has no throughput")
    ratio = new / old
    verdict = (f"throughput check [{name}]: {new:,.0f} vs committed "
               f"{old:,.0f} {unit} ({ratio:.2f}x)")
    if ratio < 1.0 - max_regression:
        raise BenchmarkError(
            f"{verdict} — regressed beyond the {max_regression:.0%} gate")
    return verdict
