"""Experiment runners: one function per table/figure of the evaluation.

Each ``run_*`` function builds the paper's experimental setup from scratch
(cluster, partitioning, middleware config), executes it on the simulated
substrate, and returns structured rows; the ``benchmarks/`` suite prints
them and asserts the paper's qualitative shapes (who wins, by what factor,
where crossovers and OOMs fall).

All returned times are simulated milliseconds and fully deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms import LabelPropagation, MultiSourceSSSP, PageRank
from ..baselines import GunrockSystem, LuxSystem, distributed_gpu_fits
from ..cluster import (
    JVM_RUNTIME,
    NATIVE_RUNTIME,
    Topology,
    make_cluster,
    make_heterogeneous_cluster,
)
from ..core import (
    FULL,
    NETWORK_RESILIENT,
    RESILIENT,
    ClusterSpec,
    GXPlug,
    MiddlewareConfig,
    StragglerConfig,
    balancing_factors,
    cluster_coefficients,
    optimal_makespan,
)
from ..core.pipeline import PAPER_FIG15_COEFFICIENTS
from ..engines import GraphXEngine, PowerGraphEngine
from ..errors import DeviceMemoryError
from ..fault import (LINK_SLOW, NET_DELAY, NET_DROP, NET_DUP, SLOWDOWN,
                     SYNC_FAIL, FaultPlan)
from ..graph import (
    DATASETS,
    clustering_partition,
    hash_partition,
    load_dataset,
    load_synthetic_clustered,
    load_synthetic_uniform,
)

ENGINES = {
    "graphx": (GraphXEngine, JVM_RUNTIME),
    "powergraph": (PowerGraphEngine, NATIVE_RUNTIME),
}


def algorithm_factories() -> Dict[str, Tuple[Callable, Optional[int]]]:
    """The paper's three workloads with their iteration budgets."""
    return {
        "pagerank": (lambda: PageRank(), 10),
        "sssp-bf": (lambda: MultiSourceSSSP(sources=(0, 1, 2, 3)), None),
        "lp": (lambda: LabelPropagation(), 15),
    }


def _run(engine_cls, graph, cluster, algorithm, max_iter,
         config: Optional[MiddlewareConfig] = None):
    """One engine run; ``config=None`` means host-only (no middleware)."""
    middleware = GXPlug(cluster, config) if config is not None else None
    engine = engine_cls.build(graph, cluster, middleware=middleware)
    return engine.run(algorithm, max_iterations=max_iter)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def run_table1() -> List[Tuple]:
    """Dataset inventory: paper sizes and the synthetic twins' sizes."""
    rows = []
    for name, spec in DATASETS.items():
        twin = load_dataset(name)
        rows.append((name, spec.paper_vertices, spec.paper_edges, spec.kind,
                     twin.num_vertices, twin.num_edges,
                     round(twin.average_degree(), 2)))
    return rows


# ---------------------------------------------------------------------------
# Fig. 8 — engine x accelerator speedups
# ---------------------------------------------------------------------------

def run_fig8(datasets: Sequence[str] = ("orkut",),
             num_nodes: int = 4) -> List[Tuple]:
    """Rows: (dataset, engine, algorithm, variant, total_ms, speedup).

    Variants: bare engine, CPU+engine, GPU+engine — the Fig. 8 bars.
    """
    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        for engine_name, (engine_cls, runtime) in ENGINES.items():
            for alg_name, (factory, cap) in algorithm_factories().items():
                base = _run(engine_cls, graph,
                            make_cluster(num_nodes, runtime=runtime),
                            factory(), cap)
                cpu_cluster = make_cluster(num_nodes,
                                           cpu_accels_per_node=1,
                                           runtime=runtime)
                cpu = _run(engine_cls, graph, cpu_cluster, factory(), cap,
                           config=FULL)
                gpu_cluster = make_cluster(num_nodes, gpus_per_node=1,
                                           runtime=runtime)
                gpu = _run(engine_cls, graph, gpu_cluster, factory(), cap,
                           config=FULL)
                assert np.allclose(base.values, gpu.values, equal_nan=True)
                rows.append((ds, engine_name, alg_name, "none",
                             base.total_ms, 1.0))
                rows.append((ds, engine_name, alg_name, "cpu+",
                             cpu.total_ms, base.total_ms / cpu.total_ms))
                rows.append((ds, engine_name, alg_name, "gpu+",
                             gpu.total_ms, base.total_ms / gpu.total_ms))
    return rows


# ---------------------------------------------------------------------------
# Fig. 9 — scalability vs Gunrock / Lux
# ---------------------------------------------------------------------------

def _gxplug_run_ms(graph, num_gpus: int, algorithm, max_iter) -> float:
    """PowerGraph+GX-Plug with ``num_gpus`` nodes of one GPU each."""
    cluster = make_cluster(num_gpus, gpus_per_node=1,
                           runtime=NATIVE_RUNTIME)
    plug = GXPlug(cluster, FULL)
    engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
    return engine.run(algorithm, max_iterations=max_iter).total_ms


def run_fig9a(dataset: str = "orkut",
              gpu_counts: Sequence[int] = (1, 2, 3, 4)) -> List[Tuple]:
    """Rows: (system, gpus, total_ms | None).  Orkut PageRank."""
    graph = load_dataset(dataset)
    rows = []
    for g in gpu_counts:
        rows.append(("gx-plug", g,
                     _gxplug_run_ms(graph, g, PageRank(), 10)))
        try:
            lux = LuxSystem(graph, num_gpus=g).run(PageRank(),
                                                   max_iterations=10)
            rows.append(("lux", g, lux.total_ms))
        except DeviceMemoryError:
            rows.append(("lux", g, None))
        if g == 1:
            try:
                gr = GunrockSystem(graph).run(PageRank(), max_iterations=10)
                rows.append(("gunrock", g, gr.total_ms))
            except DeviceMemoryError:
                rows.append(("gunrock", g, None))
    return rows


def run_fig9b(datasets: Sequence[str] = ("twitter", "uk-2007-02"),
              gpu_counts: Sequence[int] = (2, 3, 4)) -> List[Tuple]:
    """Rows: (dataset, system, gpus, total_ms | None).

    SSSP-BF on the two large twins — the regime where the paper credits
    GX-Plug's synchronization optimizations ("e.g., synchronization
    skipping, which may become more critical for the scalability on
    large datasets").  Gunrock overflows outright; UK-2007 stops fitting
    every distributed system at 4 GPUs.
    """
    def sssp():
        return MultiSourceSSSP(sources=(0, 1, 2, 3))

    rows = []
    for ds in datasets:
        graph = load_dataset(ds)
        gunrock = GunrockSystem(graph)
        rows.append((ds, "gunrock", 1,
                     None if not gunrock.fits() else
                     gunrock.run(sssp()).total_ms))
        for g in gpu_counts:
            if distributed_gpu_fits(graph, g):
                rows.append((ds, "gx-plug", g,
                             _gxplug_run_ms(graph, g, sssp(), None)))
                lux = LuxSystem(graph, num_gpus=g)
                rows.append((ds, "lux", g, lux.run(sssp()).total_ms))
            else:
                rows.append((ds, "gx-plug", g, None))
                rows.append((ds, "lux", g, None))
    return rows


def run_fig9c(dataset: str = "orkut",
              gpu_counts: Sequence[int] = (1, 2, 3, 4)) -> List[Tuple]:
    """Rows: (algorithm, gpus, total_ms).  GX-Plug across workloads."""
    graph = load_dataset(dataset)
    rows = []
    for alg_name, (factory, cap) in algorithm_factories().items():
        for g in gpu_counts:
            rows.append((alg_name, g,
                         _gxplug_run_ms(graph, g, factory(), cap)))
    return rows


MIXES_9D = (
    ("1cpu", [["cpu"], ["cpu"]]),
    ("1gpu", [["gpu"], ["gpu"]]),
    ("1gpu+1cpu", [["gpu", "cpu"], ["gpu", "cpu"]]),
    ("2gpu", [["gpu", "gpu"], ["gpu", "gpu"]]),
    ("2gpu+1cpu", [["gpu", "gpu", "cpu"], ["gpu", "gpu", "cpu"]]),
)


def run_fig9d(dataset: str = "orkut") -> List[Tuple]:
    """Rows: (mix, capacity_factor, total_ms).  Mixing accelerators."""
    graph = load_dataset(dataset)
    rows = []
    for label, spec in MIXES_9D:
        cluster = make_heterogeneous_cluster(spec, runtime=NATIVE_RUNTIME)
        plug = GXPlug(cluster, FULL)
        engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
        res = engine.run(PageRank(), max_iterations=10)
        capacity = sum(cluster.capacity_factors())
        rows.append((label, capacity, res.total_ms))
    return rows


# ---------------------------------------------------------------------------
# Fault-tolerance overhead (fault-free runs, monitor + checkpoints on)
# ---------------------------------------------------------------------------

def run_fault_overhead(dataset: str = "orkut",
                       num_nodes: int = 4) -> List[Tuple]:
    """Rows: (algorithm, variant, total_ms, overhead).

    The Fig. 8 GPU+PowerGraph configuration run fault-free twice: with
    the fault-tolerance layer off (``FULL``) and on (``RESILIENT``:
    heartbeat monitoring, checkpoints every 2 supersteps, host
    degradation armed).  The enabled path's budget is < 10% overhead —
    heartbeats piggyback on protocol messages, so the cost is just the
    periodic vertex-table snapshots.
    """
    graph = load_dataset(dataset)
    rows = []
    for alg_name, (factory, cap) in algorithm_factories().items():
        cluster = make_cluster(num_nodes, gpus_per_node=1,
                               runtime=NATIVE_RUNTIME)
        base = _run(PowerGraphEngine, graph, cluster, factory(), cap,
                    config=FULL)
        ft_cluster = make_cluster(num_nodes, gpus_per_node=1,
                                  runtime=NATIVE_RUNTIME)
        ft = _run(PowerGraphEngine, graph, ft_cluster, factory(), cap,
                  config=RESILIENT)
        assert np.allclose(base.values, ft.values, equal_nan=True)
        overhead = (ft.total_ms / base.total_ms - 1.0
                    if base.total_ms else 0.0)
        rows.append((alg_name, "full", base.total_ms, 0.0))
        rows.append((alg_name, "resilient", ft.total_ms, overhead))
    return rows


# ---------------------------------------------------------------------------
# Fault soak: seeded random campaigns at increasing rates
# ---------------------------------------------------------------------------

#: The recoverable network kinds the soak sweeps over.  ``node_partition``
#: is excluded on purpose: it permanently degrades a node, so its cost is
#: a step function (rollback + rebalance + slower tail), not the
#: per-fault recovery overhead whose linear growth the soak measures.
SOAK_KINDS = (NET_DROP, NET_DELAY, NET_DUP, SYNC_FAIL)


def run_fault_soak(dataset: str = "wrn", num_nodes: int = 2,
                   seed: int = 17,
                   rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
                   kinds: Sequence[str] = SOAK_KINDS,
                   max_iter: int = 10,
                   topology: Optional[str] = None) -> List[Tuple]:
    """Rows: (rate, injected, total_ms, overhead_ms, retransmits,
    net_wasted_ms, rollbacks).

    One :meth:`FaultPlan.random` campaign per rate, all from the same
    seed, on the NETWORK_RESILIENT stack.  Results must match the
    rate-0 run exactly; the recovery overhead (total beyond the rate-0
    cost) is reported per campaign so the suite can assert it scales
    linearly with the number of injected faults.

    ``topology`` — optional rack spec (``"rack:RxN"``); link-level
    fault kinds (``link_slow`` / ``link_flaky``) need one, since a flat
    network has no concrete links to inflate.
    """
    graph = load_dataset(dataset)
    baseline = None
    rows = []
    for rate in rates:
        plan = FaultPlan.random(seed, supersteps=max_iter,
                                num_nodes=num_nodes, rate=rate,
                                kinds=tuple(kinds))
        cluster = ClusterSpec(nodes=num_nodes, gpus_per_node=1,
                              runtime="native",
                              topology=topology).build()
        result = _run(PowerGraphEngine, graph, cluster, PageRank(),
                      max_iter,
                      config=NETWORK_RESILIENT.with_(fault_plan=plan))
        if baseline is None:
            baseline = result
        assert np.allclose(result.values, baseline.values, atol=1e-9)
        injected = sum(s.faults_injected for s in result.stats)
        rows.append((rate, injected, result.total_ms,
                     result.total_ms - baseline.total_ms,
                     result.retransmits, result.net_wasted_ms,
                     result.rollbacks))
    return rows


def run_straggler_soak(dataset: str = "wrn", num_nodes: int = 2,
                       gpus_per_node: int = 2, factor: float = 4.0,
                       passes: int = 6,
                       max_iter: int = 8) -> List[Tuple]:
    """Rows: (variant, total_ms, lost_ms, verdicts, speculation,
    coeff_updates, online_rebalances).

    Gray-failure soak: PageRank on the RESILIENT stack, clean and with
    one daemon slowed ``factor``x for ``passes`` passes, each with the
    gray responses off (no detection) and on (detection + speculative
    re-execution + online Lemma-2 re-estimation).  Invariants asserted
    here, shape asserted by the suite:

    * detection alone is free — the clean on/off pair is bit-identical
      in values *and* simulated time;
    * the slowdown never corrupts values — detect-off matches clean
      bit-for-bit, detect-on to 1e-9 (the online repartition regroups
      floating-point merges, exactly like degradation rebalancing).
    """
    graph = load_dataset(dataset)
    plan = FaultPlan.single(SLOWDOWN, 1, node_id=0, daemon_index=0,
                            factor=factor, passes=passes)

    def one(fault_plan, scfg):
        cluster = make_cluster(num_nodes, gpus_per_node=gpus_per_node,
                               runtime=NATIVE_RUNTIME)
        config = RESILIENT.with_(fault_plan=fault_plan, straggler=scfg)
        return _run(PowerGraphEngine, graph, cluster, PageRank(),
                    max_iter, config=config)

    detect_off = StragglerConfig()
    detect_on = StragglerConfig(enabled=True, speculate=True,
                                reestimate=True)
    clean_off = one(None, detect_off)
    clean_on = one(None, detect_on)
    slow_off = one(plan, detect_off)
    slow_on = one(plan, detect_on)

    assert np.array_equal(clean_on.values, clean_off.values)
    assert clean_on.total_ms == clean_off.total_ms
    assert np.array_equal(slow_off.values, clean_off.values)
    assert np.allclose(slow_on.values, clean_off.values, atol=1e-9)

    base = clean_off.total_ms
    rows = []
    for label, res in (("clean/detect-off", clean_off),
                       ("clean/detect-on", clean_on),
                       ("slowdown/detect-off", slow_off),
                       ("slowdown/detect-on", slow_on)):
        rows.append((label, res.total_ms, res.total_ms - base,
                     res.straggler_verdicts,
                     f"{res.speculative_wins}W/"
                     f"{res.speculative_losses}L",
                     res.coeff_updates, res.online_rebalances))
    return rows


def run_topology_soak(dataset: str = "wrn", topology: str = "rack:2x1",
                      factor: float = 4.0, passes: int = 60,
                      ms_per_byte: float = 2e-4,
                      max_iter: int = 12) -> List[Tuple]:
    """Rows: (variant, total_ms, lost_ms, link_verdicts, link_slow_ms,
    coeff_updates, online_rebalances).

    Link gray-failure soak: PageRank over a two-rack topology whose
    cross-rack uplink is inflated ``factor``x for ``passes`` collectives
    (a congested spine: fragments arrive late, values never corrupt),
    with the topology-aware response off ("blind": detection only) and
    on ("aware": per-link detection + link-adjusted Lemma-2 online
    repartitioning).  The interconnect is deliberately thin
    (``ms_per_byte``) and synchronization strict (no skipping, no lazy
    trim): the regime where per-link bandwidth, not node compute,
    decides the makespan.  Invariants asserted here, the >=2x recovery
    floor asserted by the suite:

    * link detection alone is free — the clean blind/aware pair is
      bit-identical in values *and* simulated time;
    * a slow link never corrupts values — every variant matches the
      clean run to 1e-9 (repartitioning regroups floating-point
      merges, exactly like the straggler soak).
    """
    graph = load_dataset(dataset)
    racks = len(Topology.parse_spec(topology))
    num_nodes = sum(len(r) for r in Topology.parse_spec(topology))
    assert racks >= 2, "the soak needs a cross-rack uplink to inflate"
    # the slowed uplink: the last node's path crosses racks
    plan = FaultPlan.single(LINK_SLOW, 1, node_id=num_nodes - 1,
                            factor=factor, passes=passes)
    spec = ClusterSpec(nodes=num_nodes, gpus_per_node=1,
                       topology=topology, ms_per_byte=ms_per_byte)

    def one(fault_plan, aware):
        scfg = StragglerConfig(enabled=True, reestimate=aware)
        config = NETWORK_RESILIENT.with_(fault_plan=fault_plan,
                                         straggler=scfg,
                                         sync_skip=False,
                                         lazy_upload=False)
        return _run(PowerGraphEngine, graph, spec.build(), PageRank(),
                    max_iter, config=config)

    clean_blind = one(None, False)
    clean_aware = one(None, True)
    slow_blind = one(plan, False)
    slow_aware = one(plan, True)

    assert np.array_equal(clean_aware.values, clean_blind.values)
    assert clean_aware.total_ms == clean_blind.total_ms
    assert np.allclose(slow_blind.values, clean_blind.values, atol=1e-9)
    assert np.allclose(slow_aware.values, clean_blind.values, atol=1e-9)

    rows = []
    for label, res, base in (
            ("clean/topology-blind", clean_blind, clean_blind),
            ("clean/topology-aware", clean_aware, clean_aware),
            ("link-slow/topology-blind", slow_blind, clean_blind),
            ("link-slow/topology-aware", slow_aware, clean_aware)):
        rows.append((label, res.total_ms, res.total_ms - base.total_ms,
                     res.link_verdicts, res.link_slow_ms,
                     res.coeff_updates, res.online_rebalances))
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 — pipeline shuffle
# ---------------------------------------------------------------------------

FIXED_BLOCK_SIZE = 1024  # the non-adaptive "Pipeline" setting


def run_fig10(dataset: str = "orkut", num_nodes: int = 2) -> List[Tuple]:
    """Rows: (algorithm, variant, total_ms).

    Variants: pipeline* (Lemma-1 optimal block size), pipeline (fixed
    block size), without (the 5-step sequential flow with its two extra
    agent<->daemon copies).  Caching stays on, as in the full system.
    """
    graph = load_dataset(dataset)
    cached = dict(sync_cache=True, lazy_upload=True, sync_skip=False)
    variants = {
        "pipeline*": MiddlewareConfig(pipeline=True, block_size=None,
                                      **cached),
        "pipeline": MiddlewareConfig(pipeline=True,
                                     block_size=FIXED_BLOCK_SIZE,
                                     **cached),
        "without": MiddlewareConfig(pipeline=False,
                                    block_size=FIXED_BLOCK_SIZE,
                                    **cached),
    }
    rows = []
    for alg_name, (factory, cap) in algorithm_factories().items():
        for label, config in variants.items():
            cluster = make_cluster(num_nodes, gpus_per_node=1,
                                   runtime=NATIVE_RUNTIME)
            res = _run(PowerGraphEngine, graph, cluster, factory(), cap,
                       config=config)
            rows.append((alg_name, label, res.total_ms))
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — synchronization caching & skipping
# ---------------------------------------------------------------------------

def _fig11_graphs():
    return {
        "synthetic": load_synthetic_uniform(),
        "real": load_dataset("orkut"),
    }


def run_fig11a(num_nodes: int = 4) -> List[Tuple]:
    """Rows: (engine, dataset, cache, total_ms, steady_ms, hit_rate).

    SSSP-BF with caching+lazy-upload toggled.  ``steady_ms`` is the
    per-iteration cost once the cache is warm (mean of the iterations
    after the first), the regime the paper's long cluster runs measure.
    """
    rows = []
    for ds_name, graph in _fig11_graphs().items():
        for engine_name, (engine_cls, runtime) in ENGINES.items():
            for cache_on in (False, True):
                config = MiddlewareConfig(
                    sync_cache=cache_on, lazy_upload=cache_on,
                    sync_skip=False)
                cluster = make_cluster(num_nodes, gpus_per_node=1,
                                       runtime=runtime)
                res = _run(engine_cls, graph, cluster,
                           MultiSourceSSSP(sources=(0, 1, 2, 3)), None,
                           config=config)
                hits = sum(s.cache_hits for s in res.stats)
                misses = sum(s.cache_misses for s in res.stats)
                rate = hits / (hits + misses) if hits + misses else 0.0
                warm = [s.total_ms for s in res.stats[1:] if s.active_edges]
                steady = sum(warm) / len(warm) if warm else 0.0
                rows.append((engine_name, ds_name,
                             "on" if cache_on else "off",
                             res.total_ms, steady, rate))
    return rows


def run_fig11b(num_nodes: int = 4) -> List[Tuple]:
    """Rows: (dataset, iters_no_skip, iters_with_skip, decrease).

    SSSP-BF; the paper "count[s] the number of iterations skipped ...
    and compare[s] the result with the number of iterations when
    synchronization skipping mechanism is disabled".  Real graphs use the
    locality-preserving clustering partitioner (the paper's 'better
    partitioning results that trigger synchronization skipping'); the
    synthetic uniform graph uses a hash partition.
    """
    cases = {
        "synthetic": (load_synthetic_uniform(),
                      lambda g: hash_partition(g, num_nodes)),
        "real-wrn": (load_dataset("wrn"),
                     lambda g: clustering_partition(g, num_nodes, seed=3)),
        "real-clustered": (load_synthetic_clustered(16, 200),
                           lambda g: clustering_partition(g, num_nodes,
                                                          seed=3)),
    }
    rows = []
    for label, (graph, parter) in cases.items():
        iters = {}
        for skip in (False, True):
            cluster = make_cluster(num_nodes, gpus_per_node=1,
                                   runtime=NATIVE_RUNTIME)
            config = FULL if skip else MiddlewareConfig(sync_skip=False)
            plug = GXPlug(cluster, config)
            engine = PowerGraphEngine(parter(graph), cluster,
                                      middleware=plug)
            res = engine.run(MultiSourceSSSP(sources=(0, 1, 2, 3)))
            iters[skip] = res.iterations
        decrease = 1.0 - iters[True] / iters[False] if iters[False] else 0.0
        rows.append((label, iters[False], iters[True], decrease))
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 — workload balancing
# ---------------------------------------------------------------------------

def run_fig12a(dataset: str = "orkut") -> List[Tuple]:
    """Case 1 (fixed hardware, tuned partitioning).

    Two nodes — 1 GPU + 1 CPU vs 3 GPU + 1 CPU; rows:
    (strategy, total_ms) for even/balanced plus the model's optimum
    estimate of the dominant compute term.
    """
    graph = load_dataset(dataset)
    spec = [["gpu", "cpu"], ["gpu", "gpu", "gpu", "cpu"]]

    def run_with(shares):
        cluster = make_heterogeneous_cluster(spec, runtime=NATIVE_RUNTIME)
        plug = GXPlug(cluster, FULL)
        engine = PowerGraphEngine.build(graph, cluster, middleware=plug,
                                        shares=shares)
        return engine.run(PageRank(), max_iterations=10)

    even = run_with([0.5, 0.5])
    probe_cluster = make_heterogeneous_cluster(spec, runtime=NATIVE_RUNTIME)
    # compute-bound regime (warm caches): c_j ~ 1 / aggregate capacity
    coeffs = [1.0 / node.capacity_factor() for node in probe_cluster.nodes]
    balanced = run_with(balancing_factors(coeffs).tolist())
    # theoretical optimum: Lemma-2 compute makespan per iteration plus the
    # measured non-compute portion of the balanced run
    d_total = graph.num_edges
    per_iter_opt = optimal_makespan(d_total, coeffs)
    non_compute = sum(s.sync_ms + s.apply_ms for s in balanced.stats)
    theoretical = (balanced.setup_ms + non_compute
                   + per_iter_opt * balanced.iterations)
    return [("not-balanced", even.total_ms),
            ("balanced", balanced.total_ms),
            ("theoretical", theoretical)]


def run_fig12b(dataset: str = "orkut",
               load_splits: Sequence[Tuple[float, float]] = (
                   (0.5, 0.5), (0.6, 0.4), (0.7, 0.3), (0.8, 0.2))
               ) -> List[Tuple]:
    """Case 2 (fixed partitioning, tuned hardware).

    Rows: (split, variant, gpus_per_node, total_ms).  "not balanced" keeps
    1 GPU per node; "balanced" allocates GPUs per Lemma 3.
    """
    from ..core import accelerators_for_load
    from ..accel import V100

    graph = load_dataset(dataset)
    rows = []
    for split in load_splits:
        # fixed hardware: 1 GPU each
        cluster = make_cluster(2, gpus_per_node=1, runtime=NATIVE_RUNTIME)
        plug = GXPlug(cluster, FULL)
        engine = PowerGraphEngine.build(graph, cluster, middleware=plug,
                                        shares=list(split))
        not_bal = engine.run(PageRank(), max_iterations=10)
        rows.append((split, "not-balanced", (1, 1), not_bal.total_ms))

        # Lemma 3: give the heavy node proportionally more GPUs
        loads = [split[0] * graph.num_edges, split[1] * graph.num_edges]
        unit = V100.capacity_factor()
        counts = accelerators_for_load(loads, max_factor=4 * unit,
                                       unit_factor=unit)
        spec = [["gpu"] * max(1, c) for c in counts]
        bal_cluster = make_heterogeneous_cluster(spec,
                                                 runtime=NATIVE_RUNTIME)
        bal_plug = GXPlug(bal_cluster, FULL)
        bal_engine = PowerGraphEngine.build(graph, bal_cluster,
                                            middleware=bal_plug,
                                            shares=list(split))
        bal = bal_engine.run(PageRank(), max_iterations=10)
        rows.append((split, "balanced", tuple(max(1, c) for c in counts),
                     bal.total_ms))
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — runtime isolation
# ---------------------------------------------------------------------------

def run_fig13(iterations: int = 11, dataset: str = "orkut") -> List[Tuple]:
    """Rows: (variant, total_ms, device_inits).

    Daemon-agent (init once) vs direct GPU call (re-init per request).
    """
    graph = load_dataset(dataset)
    rows = []
    for label, isolated in (("daemon-agent", True), ("direct-call", False)):
        cluster = make_cluster(1, gpus_per_node=1, runtime=NATIVE_RUNTIME)
        config = MiddlewareConfig(runtime_isolation=isolated,
                                  sync_cache=False, lazy_upload=False,
                                  sync_skip=False)
        plug = GXPlug(cluster, config)
        engine = PowerGraphEngine.build(graph, cluster, middleware=plug)
        res = engine.run(PageRank(), max_iterations=iterations)
        inits = sum(d.accelerator.init_count
                    for a in plug.agents.values() for d in a.daemons)
        rows.append((label, res.total_ms, inits))
    return rows


# ---------------------------------------------------------------------------
# Fig. 14 — middleware cost ratio
# ---------------------------------------------------------------------------

def run_fig14(node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
              dataset: str = "orkut",
              engines: Sequence[str] = ("powergraph", "graphx")
              ) -> List[Tuple]:
    """Rows: (engine, algorithm, nodes, middleware_ratio)."""
    graph = load_dataset(dataset)
    rows = []
    for engine_name in engines:
        engine_cls, runtime = ENGINES[engine_name]
        for alg_name, (factory, cap) in algorithm_factories().items():
            for n in node_counts:
                cluster = make_cluster(n, gpus_per_node=1, runtime=runtime)
                plug = GXPlug(cluster, FULL)
                engine = engine_cls.build(graph, cluster, middleware=plug)
                res = engine.run(factory(), max_iterations=cap)
                rows.append((engine_name, alg_name, n,
                             res.middleware_ratio))
    return rows


# ---------------------------------------------------------------------------
# Fig. 15 — block size selection
# ---------------------------------------------------------------------------

def run_fig15(dataset: str = "orkut",
              s_values: Sequence[int] = (1, 2, 5, 10, 20, 50, 100, 200,
                                         500, 1000)) -> Dict[str, Dict]:
    """Measured-vs-estimated pipeline time over the block count s.

    For each workload: sweep s on a single agent-daemon pair with the
    iteration the paper uses (first iteration for PR/LP, the peak-work
    iteration for SSSP), measure the mechanism's makespan, and compare
    with the Eq. 1 estimate and the estimated s_opt.
    """
    from ..core.agent import Agent
    from ..ipc.shm import ShmRegistry
    from ..cluster import DistributedNode
    from ..accel import make_gpu

    graph = load_dataset(dataset)
    out: Dict[str, Dict] = {}
    for alg_name, (factory, cap) in algorithm_factories().items():
        algorithm = factory()
        state = algorithm.init_state(graph)
        values, active = state.values, state.active
        if alg_name == "sssp-bf":
            # use the heaviest iteration's frontier (the paper uses the
            # 6th iteration, "since the computation workload is the
            # maximum during the entire execution")
            best_active = active
            best_work = int(active[graph.src].sum())
            for _ in range(8):
                sel = active[graph.src]
                if not sel.any():
                    break
                msgs = algorithm.msg_gen(graph.src[sel], graph.dst[sel],
                                         graph.weights[sel], values)
                merged = algorithm.msg_merge(graph.dst[sel], msgs)
                values, changed = algorithm.msg_apply(values, merged)
                active = algorithm.next_active(graph, changed,
                                               graph.num_vertices)
                work = int(active[graph.src].sum())
                if work > best_work:
                    best_active, best_work = active.copy(), work
            active = best_active
        sel = active[graph.src]
        src, dst, w = graph.src[sel], graph.dst[sel], graph.weights[sel]
        d = int(src.size)

        # warm-cache steady state: the pipeline's stage slopes are then
        # exactly the effective Eq. 2 coefficients, so the measured curve
        # is directly comparable to the Eq. 1 estimate
        measured = []
        coeffs = None
        for s in s_values:
            if s > d:
                continue
            block = max(1, math.ceil(d / s))
            node = DistributedNode(0, NATIVE_RUNTIME, [make_gpu()])
            agent = Agent(node, ShmRegistry(), MiddlewareConfig(
                block_size=block, sync_cache=True, lazy_upload=True,
                sync_skip=False))
            agent.connect()
            agent.edge_pass(src, dst, w, values, algorithm)  # warm cache
            res = agent.edge_pass(src, dst, w, values, algorithm)
            measured.append((s, res.elapsed_ms))
            if coeffs is None:
                coeffs = agent.coefficients_for(agent.daemons[0])

        estimated = [(s, coeffs.total_time(d, s)) for s, _ in measured]
        s_opt = coeffs.choose_num_blocks(d)
        out[alg_name] = {
            "d": d,
            "measured": measured,
            "estimated": estimated,
            "s_opt": s_opt,
            "t_opt_estimate": coeffs.total_time(d, s_opt),
        }
    return out


def paper_fig15_analysis(d: int = 635_000_000) -> List[Tuple]:
    """s_opt for the paper's own coefficient sets (footnote 6)."""
    rows = []
    for name, coeffs in PAPER_FIG15_COEFFICIENTS.items():
        b_opt, t_min = coeffs.lemma1_optimal(d)
        rows.append((name, coeffs.k1, coeffs.k2, coeffs.k3, coeffs.a,
                     round(b_opt), round(d / b_opt, 1)))
    return rows


# ---------------------------------------------------------------------------
# Serving soak (multi-tenant GraphService vs one-shot deploys)
# ---------------------------------------------------------------------------

#: The serving soak's per-tenant query mix: (algorithm, params).
SERVE_MIX = (
    ("pagerank", {}),
    ("cc", {}),
    ("sssp-bf", {"sources": (0, 1, 2, 3)}),
)


def run_serve_soak(dataset: str = "wrn", num_nodes: int = 2,
                   tenants: int = 3, waves: int = 2,
                   max_iter: int = 8,
                   crash: bool = True) -> List[Tuple]:
    """Rows: (variant, jobs, done, failed, cache_hits, hit_rate,
    coalesced, p50_ms, p99_ms, makespan_ms, cached_speedup, isolated).

    ``tenants`` tenants each submit their :data:`SERVE_MIX` query
    (tenant ``i`` gets ``SERVE_MIX[i % 3]``) once per wave; waves are
    submitted back to back, so wave >= 2 repeats are answered from the
    result cache.  Three variants:

    * ``serial`` — the pre-serving baseline: every query is a one-shot
      deploy (reload + repartition + full engine run), latencies are
      cumulative because jobs queue behind each other;
    * ``served`` — one :class:`~repro.serve.GraphService` sharing the
      graph and partitions, fair-share time slicing, result cache on;
    * ``served+crash`` — same, plus a chaos tenant whose job carries a
      repeated daemon-crash fault plan on the resilient stack.

    ``cached_speedup`` is the worst repeated-query speedup observed:
    min over cached jobs of (that query's recompute cost / the cached
    job's consumed service time).  ``isolated`` is True iff every
    non-chaos job's values are byte-identical to a solo one-shot run
    of the same query — the multi-tenant isolation invariant, asserted
    under injected faults by the suite.
    """
    from ..fault import CRASH
    from ..core.config import RuntimeConfig
    from ..serve import GraphService, JobSpec
    from ..serve.job import ALGORITHMS as SERVE_ALGORITHMS

    graph = load_dataset(dataset)
    spec = ClusterSpec(nodes=num_nodes, gpus_per_node=1)

    def query_for(tenant: int):
        return SERVE_MIX[tenant % len(SERVE_MIX)]

    # solo one-shot baselines, one per distinct query in the mix
    solo = {}
    for algorithm, params in SERVE_MIX[:max(tenants, 1)]:
        cluster = spec.build()
        result = _run(PowerGraphEngine, graph, cluster,
                      SERVE_ALGORITHMS[algorithm](**params), max_iter,
                      config=RuntimeConfig())
        solo[algorithm] = result

    rows = []

    # -- serial: every job a fresh deploy, latencies queue up -----------------------
    latencies, clock = [], 0.0
    total_jobs = tenants * waves
    for _ in range(waves):
        for tenant in range(tenants):
            algorithm, params = query_for(tenant)
            cluster = spec.build()
            result = _run(PowerGraphEngine, graph, cluster,
                          SERVE_ALGORITHMS[algorithm](**params),
                          max_iter, config=RuntimeConfig())
            clock += result.total_ms
            latencies.append(clock)
    arr = np.asarray(latencies)
    rows.append(("serial", total_jobs, total_jobs, 0, 0, 0.0, 0,
                 float(np.percentile(arr, 50)),
                 float(np.percentile(arr, 99)), clock, 1.0, True))

    # -- served (and served+crash) ------------------------------------------------
    variants = [("served", False)]
    if crash:
        variants.append(("served+crash", True))
    for name, with_crash in variants:
        svc = GraphService(spec, cache_entries=32)
        svc.load_graph(dataset, graph)
        jobs, chaos_jobs = [], []
        for wave in range(waves):
            submitted = []
            for tenant in range(tenants):
                algorithm, params = query_for(tenant)
                submitted.append(svc.submit(JobSpec(
                    graph=dataset, algorithm=algorithm, params=params,
                    tenant=f"t{tenant}", max_iterations=max_iter)))
            if with_crash and wave == 0:
                plan = FaultPlan.single(CRASH, superstep=1, node_id=0,
                                        repeat=3)
                chaos_jobs.append(svc.submit(JobSpec(
                    graph=dataset, algorithm="pagerank",
                    tenant="chaos", max_iterations=max_iter,
                    runtime=(RuntimeConfig.preset("resilient")
                             .with_(fault_plan=plan)),
                    use_cache=False)))
            svc.run()
            jobs.extend(submitted)
        done = sum(j.state == "done" for j in jobs)
        failed = sum(j.state == "failed" for j in jobs)
        hits = sum(j.from_cache for j in jobs)
        isolated = all(
            np.array_equal(j.values, solo[j.spec.algorithm].values)
            for j in jobs if j.state == "done")
        speedups = [solo[j.spec.algorithm].total_ms / j.consumed_ms
                    for j in jobs if j.from_cache]
        arr = np.asarray([j.latency_ms for j in jobs
                          if j.state == "done"])
        rows.append((name, len(jobs), done, failed, hits,
                     svc.cache.hit_rate, svc.coalesced,
                     float(np.percentile(arr, 50)),
                     float(np.percentile(arr, 99)), svc.now_ms,
                     min(speedups) if speedups else 1.0, isolated))
    return rows


# ---------------------------------------------------------------------------
# Serve chaos: crash at random points, recover, demand bit-identity
# ---------------------------------------------------------------------------

def run_serve_chaos(dataset: str = "wrn", num_nodes: int = 2,
                    seeds: Sequence[int] = (11, 23, 47),
                    max_iter: int = 10,
                    journal_dir: Optional[str] = None) -> List[Tuple]:
    """Rows: (seed, killed_at, jobs, pre_crash_done, resumed,
    identical, steps_saved, replay_noop).

    The crash-safety soak.  Per seed: a journaled no-crash baseline
    serves the :data:`SERVE_MIX`; then an identical journaled run is
    killed after a seeded-random number of scheduling rounds (the
    process state is simply dropped — nothing is flushed beyond what
    the write-ahead journal already holds); then
    :meth:`~repro.serve.GraphService.recover` rebuilds the service
    from the journal and drives it to completion.

    * ``identical`` — every job's final values are byte-identical to
      the no-crash baseline's (finished jobs restored from their
      journaled sidecars, in-flight jobs resumed from checkpoints and
      re-run);
    * ``steps_saved`` — supersteps the checkpoint resumes avoided,
      summed over resumed jobs (each must recompute *strictly fewer*
      supersteps than its cold baseline run);
    * ``replay_noop`` — recovering the finished journal a second time
      re-queues nothing, preserves every terminal state, and appends
      not a single record.
    """
    import os
    import random
    import tempfile

    from ..serve import GraphService, JobSpec
    from ..serve.journal import read_journal

    graph = load_dataset(dataset)
    spec = ClusterSpec(nodes=num_nodes, gpus_per_node=1)
    base_dir = journal_dir or tempfile.mkdtemp(prefix="serve_chaos_")

    def submit_mix(svc):
        return [svc.submit(JobSpec(
            graph=dataset, algorithm=algorithm, params=params,
            tenant=f"t{tenant}", max_iterations=max_iter))
            for tenant, (algorithm, params) in enumerate(SERVE_MIX)]

    rows = []
    for seed in seeds:
        jdir = os.path.join(base_dir, f"seed{seed}")
        os.makedirs(jdir, exist_ok=True)

        # no-crash baseline, journaled too: journaling (and the forced
        # checkpoint interval that rides with it) must never move values
        base = GraphService(spec,
                            journal=os.path.join(jdir, "base.jsonl"))
        base.load_graph(dataset, graph)
        bjobs = submit_mix(base)
        base.run()
        base_vals = {j.job_id: j.values.copy() for j in bjobs}
        cold_steps = {j.job_id: len(j.result.stats) for j in bjobs}

        # the crash run: a seeded-random number of scheduling rounds,
        # then the process "dies" — the abandoned service is never
        # drained, so the journal ends mid-flight
        jpath = os.path.join(jdir, "crash.jsonl")
        svc = GraphService(spec, journal=jpath)
        svc.load_graph(dataset, graph)
        submit_mix(svc)
        kill_at = random.Random(seed).randrange(3, 15)
        killed_at = 0
        for _ in range(kill_at):
            if not svc.step():
                break
            killed_at += 1
        del svc

        rec = GraphService.recover(jpath, graphs={dataset: graph})
        resumed_ids = {j.job_id for j in rec.queue.jobs()
                       if j.resume_from is not None}
        pre_crash_done = len(bjobs) - rec.recovered_jobs
        rec.run()

        identical = True
        steps_saved = 0
        for job_id, expect in base_vals.items():
            job = rec.job(job_id)
            if job.state != "done" or not np.array_equal(job.values,
                                                         expect):
                identical = False
            if job_id in resumed_ids and job.result is not None:
                recomputed = len(job.result.stats)
                if recomputed >= cold_steps[job_id]:
                    identical = False  # resume bought nothing: a bug
                steps_saved += cold_steps[job_id] - recomputed

        before = len(read_journal(jpath))
        rec2 = GraphService.recover(jpath, graphs={dataset: graph})
        replay_noop = (rec2.recovered_jobs == 0
                       and len(read_journal(jpath)) == before
                       and all(rec2.job(i).state == "done"
                               for i in base_vals))

        rows.append((seed, killed_at, len(bjobs), pre_crash_done,
                     len(resumed_ids), identical, steps_saved,
                     replay_noop))
    return rows


# ---------------------------------------------------------------------------
# Wire chaos: kill the socket server mid-stream, clients reconnect
# ---------------------------------------------------------------------------

def run_wire_chaos(dataset: str = "wrn", num_nodes: int = 2,
                   seeds: Sequence[int] = (5, 17, 29),
                   max_iter: int = 10, kills: int = 3,
                   journal_dir: Optional[str] = None) -> List[Tuple]:
    """Rows: (seed, kills, generations, jobs, resumed, deduped,
    reconnects, identical, exactly_once, strictly_fewer, steps_saved).

    The wire protocol's end-to-end robustness soak: everything a
    client observes must survive the server being killed out from
    under it.  Per seed:

    * a journaled **baseline** generation serves the
      :data:`SERVE_MIX` over a real socket, uninterrupted, and the
      client records every job's values as received over the wire;
    * then a fresh journal is stream-served with the server **killed**
      after a seeded number of scheduling rounds, ``kills`` times
      (abrupt: no drain, no goodbye — the journal ends mid-flight);
      after each kill the service is rebuilt with
      :meth:`~repro.serve.GraphService.recover`, a new server
      generation binds the *same* port, and the client reconnects and
      resubmits every job under its original idempotency key.

    Checks (one boolean each per row):

    * ``identical`` — every job's final wire-delivered values are
      bit-identical to the uninterrupted baseline's;
    * ``exactly_once`` — the journal holds exactly one ``submitted``
      record per idempotency key (resubmits deduped, never re-ran);
    * ``strictly_fewer`` — every checkpoint-resumed job recomputed
      strictly fewer supersteps than its cold baseline run
      (``steps_saved`` totals the supersteps the resumes avoided).
    """
    import os
    import random
    import tempfile
    import time as _time

    from ..errors import WireError
    from ..serve import GraphService, JobSpec
    from ..serve.client import GraphClient
    from ..serve.journal import read_journal
    from ..serve.wire import GraphServiceServer

    graph = load_dataset(dataset)
    spec = ClusterSpec(nodes=num_nodes, gpus_per_node=1)
    base_dir = journal_dir or tempfile.mkdtemp(prefix="wire_chaos_")

    mix = [(f"k{i}", algorithm, params)
           for i, (algorithm, params) in enumerate(SERVE_MIX)]

    def spec_for(key, algorithm, params):
        return JobSpec(graph=dataset, algorithm=algorithm,
                       params=params, tenant=f"t:{key}",
                       max_iterations=max_iter)

    def submit_all(client, ids=None):
        """(Re)submit the whole mix under stable keys: key -> job id.

        Tolerates the server dying mid-stream (the soak's kills land
        wherever they land, including between two submits): already-
        acknowledged ids are kept and the missing keys are simply
        resubmitted by the next generation's call — idempotency keys
        make the replay safe either way.
        """
        ids = dict(ids or {})
        for key, algorithm, params in mix:
            try:
                resp = client.submit(spec_for(key, algorithm, params),
                                     idempotency_key=key)
            except (WireError, OSError):
                break  # server died; the next generation resubmits
            ids[key] = resp["job_id"]
        return ids

    def wait_all(client, ids):
        vals = {}
        for key, job_id in ids.items():
            doc = client.wait(job_id, timeout_s=60)
            if doc["state"] != "done":
                raise WireError(f"job for {key} ended {doc['state']!r}")
            vals[key] = client.result_values(job_id)
        return vals

    rows = []
    for seed in seeds:
        jdir = os.path.join(base_dir, f"seed{seed}")
        os.makedirs(jdir, exist_ok=True)
        rng = random.Random(seed)

        # -- baseline: one uninterrupted socket-served generation ---------------
        base_svc = GraphService(spec,
                                journal=os.path.join(jdir, "base.jsonl"))
        base_svc.load_graph(dataset, graph)
        base_server = GraphServiceServer(base_svc)
        base_thread = base_server.serve_in_thread()
        host, port = base_server.address
        with GraphClient(host, port, client_name="wire-chaos-base",
                         jitter_seed=seed) as client:
            base_ids = submit_all(client)
            base_vals = wait_all(client, base_ids)
            cold_steps = {key: len(base_svc.job(job_id).result.stats)
                          for key, job_id in base_ids.items()}
            client.drain()
        base_thread.join(timeout=30)

        # -- chaos: same mix, server killed `kills` times mid-stream ------------
        jpath = os.path.join(jdir, "crash.jsonl")
        kill_after = [rng.randrange(3, 9) for _ in range(kills)]
        svc = GraphService(spec, journal=jpath)
        svc.load_graph(dataset, graph)
        server = GraphServiceServer(svc, host, 0,
                                    crash_after_steps=kill_after[0])
        thread = server.serve_in_thread()
        chaos_port = server.address[1]

        client = GraphClient(host, chaos_port,
                             client_name="wire-chaos", jitter_seed=seed,
                             connect_attempts=8, backoff_base_s=0.01,
                             timeout_s=10.0)
        resumed_keys = set()      # keys checkpoint-resumed at least once
        outstanding = set()       # resumed, not yet finished+accounted
        strictly_fewer = True
        steps_saved = 0
        deduped = 0
        generations = 1

        def settle_resumes(service, ids):
            """Credit resumes that finished in ``service``'s lifetime.

            A resumed job's ``result.stats`` covers only the slices it
            recomputed after its checkpoint, so its length against the
            cold baseline is exactly the resume's savings.  Settled
            keys leave ``outstanding`` so later generations (where the
            job is a sidecar-restored terminal) never recount them.
            """
            nonlocal steps_saved, strictly_fewer
            for key in sorted(outstanding):
                job = service._jobs.get(ids.get(key))
                if job is None or job.state != "done" \
                        or job.result is None or job.from_cache:
                    continue
                recomputed = len(job.result.stats)
                steps_saved += cold_steps[key] - recomputed
                if recomputed >= cold_steps[key]:
                    strictly_fewer = False
                outstanding.discard(key)

        def await_kill(server, thread):
            """Wait for the seeded kill; if the mix finished before
            the threshold, the idle server would never die — kill it
            cold (recovery then restores only terminals, also valid)."""
            deadline = _time.monotonic() + 60
            while thread.is_alive() and _time.monotonic() < deadline:
                thread.join(timeout=0.02)
                if thread.is_alive() and not server._service_busy():
                    server.crash()
            thread.join(timeout=30)

        try:
            ids = submit_all(client)

            for gen in range(kills):
                await_kill(server, thread)
                settle_resumes(svc, ids)

                # next generation: recover from the torn journal and
                # rebind the same port; the client reconnects into it
                id_to_key = {job_id: key for key, job_id in ids.items()}
                svc = GraphService.recover(jpath,
                                           graphs={dataset: graph})
                resumed_now = {
                    id_to_key[j.job_id] for j in svc.queue.jobs()
                    if j.resume_from is not None
                    and j.job_id in id_to_key}
                resumed_keys |= resumed_now
                outstanding |= resumed_now
                server = GraphServiceServer(
                    svc, host, chaos_port,
                    crash_after_steps=(kill_after[gen + 1]
                                       if gen + 1 < kills else None))
                thread = server.serve_in_thread()
                generations += 1

                before = dict(ids)
                ids = submit_all(client, ids)
                deduped += sum(ids[key] == before[key]
                               for key in ids if key in before)

            final_vals = wait_all(client, ids)
            settle_resumes(svc, ids)
            client.drain()
            thread.join(timeout=30)
        finally:
            client.close()

        identical = all(key in final_vals
                        and np.array_equal(final_vals[key],
                                           base_vals[key])
                        for key in base_vals)
        submitted_by_key: Dict[int, str] = {}
        submits = 0
        for doc in read_journal(jpath):
            if doc.get("rec") == "submitted":
                submits += 1
            if doc.get("rec") == "idempotency":
                submitted_by_key[int(doc["job_id"])] = str(doc["key"])
        exactly_once = (submits == len(mix)
                        and len(set(ids.values())) == len(mix)
                        and all(submitted_by_key.get(job_id) == key
                                for key, job_id in ids.items()))

        rows.append((seed, kills, generations, len(mix),
                     len(resumed_keys), deduped, client.reconnects,
                     identical, exactly_once, strictly_fewer,
                     steps_saved))
    return rows


# ---------------------------------------------------------------------------
# Mutation soak: streaming churn + incremental recompute vs cold restart
# ---------------------------------------------------------------------------

def _two_cycles(big: int, small: int) -> "Graph":
    """Two disjoint directed cycles (0..big-1 and big..big+small-1)."""
    from ..graph import Graph
    src = np.concatenate([np.arange(big), big + np.arange(small)])
    dst = np.concatenate([(np.arange(big) + 1) % big,
                          big + (np.arange(small) + 1) % small])
    return Graph.from_edges(big + small, src, dst,
                            name=f"cycles-{big}+{small}")


def run_mutation_soak(num_nodes: int = 2,
                      scenarios: Optional[Sequence[str]] = None,
                      journal_dir: Optional[str] = None) -> List[Tuple]:
    """Rows: (algorithm, churn, cold_steps, warm_steps, step_ratio,
    cold_ms, warm_ms, ms_ratio, warm, identical, replay_noop).

    The streaming-mutation soak: converge a query, mutate ~1% of the
    graph through :meth:`~repro.serve.GraphService.mutate`, resubmit
    the same query, and compare the incremental re-convergence against
    a cold restart of a fresh (equally journaled) service on the
    mutated graph.  Three warm scenarios — one per ``incremental``
    policy worth exercising — plus one deliberate fallback:

    * ``pagerank`` — 1% of edges re-weighted.  PageRank's messages
      weigh by out-degree, not edge weight, so the old fixpoint *is*
      the new one; the warm run re-verifies it in one superstep where
      the cold run contracts from uniform all over again
      (``incremental = "fixpoint"`` re-seeds every vertex).
    * ``cc`` — edge additions splice a small component onto a large
      one.  The warm frontier is the handful of touched vertices and
      re-convergence is bounded by the *small* component's diameter;
      cold propagation re-walks the large one.
    * ``sssp-bf`` — heavyweight edge additions that improve almost no
      distance: the warm frontier dies out in a few relaxations.
    * ``cc-shrink`` — the fallback row: the batch *removes* an edge,
      min-label propagation cannot retract monotonically, so the
      planner refuses the warm start and the service silently runs
      cold.  ``warm`` must be False and the values still identical.

    Every row asserts three things downstream: the warm run beats the
    cold restart ≥5x in supersteps *and* simulated ms (fallback row
    exempt), final values are bit-identical to the cold run on the
    mutated graph, and recovering the journal replays the mutation
    exactly once (version preserved, resubmitted batch dedupes,
    nothing re-queued).
    """
    import os
    import tempfile

    from ..graph import road_network, uniform_random
    from ..graph.mutations import MutationBatch
    from ..serve import GraphService, JobSpec
    from ..serve.journal import read_journal

    spec = ClusterSpec(nodes=num_nodes, gpus_per_node=1)
    base_dir = journal_dir or tempfile.mkdtemp(prefix="mutation_soak_")

    def reweight_batch(graph, fraction=0.01, seed=11):
        rng = np.random.default_rng(seed)
        m = max(1, int(graph.num_edges * fraction))
        eids = rng.choice(graph.num_edges, size=m, replace=False)
        # strictly *lower* weights: keeps the batch monotone-safe, and
        # PageRank ignores weights anyway
        return MutationBatch(
            update_src=graph.src[eids], update_dst=graph.dst[eids],
            update_weights=graph.weights[eids] * 0.5)

    def splice_batch(graph, big=600, seed=13):
        # connect the small trailing cycle into the big one, both ways
        return MutationBatch(
            add_src=np.asarray([0, big], dtype=np.int64),
            add_dst=np.asarray([big, 0], dtype=np.int64),
            add_weights=np.asarray([1.0, 1.0]))

    def heavy_edges_batch(graph, count=12, seed=17):
        rng = np.random.default_rng(seed)
        n = graph.num_vertices
        src = rng.integers(0, n, size=count)
        dst = (src + 1 + rng.integers(0, n - 1, size=count)) % n
        heavy = np.full(count, 1e6)   # improves (almost) nothing
        return MutationBatch(add_src=src, add_dst=dst,
                             add_weights=heavy)

    def drop_edge_batch(graph):
        return MutationBatch(
            remove_src=graph.src[:1].copy(),
            remove_dst=graph.dst[:1].copy())

    catalog = {
        "pagerank": dict(
            algorithm="pagerank", params={"tolerance": 0.0},
            max_iter=2000, churn="reweight 1% of edges",
            graph=lambda: uniform_random(3000, 24000, seed=7),
            batch=reweight_batch, expect_warm=True),
        "cc": dict(
            algorithm="cc", params={}, max_iter=2000,
            churn="splice small component into big",
            graph=lambda: _two_cycles(600, 12),
            batch=splice_batch, expect_warm=True),
        "sssp-bf": dict(
            algorithm="sssp-bf", params={"sources": (0, 1)},
            max_iter=2000, churn="add 12 heavyweight edges",
            graph=lambda: road_network(40, 40, seed=3),
            batch=heavy_edges_batch, expect_warm=True),
        "cc-shrink": dict(
            algorithm="cc", params={}, max_iter=2000,
            churn="remove an edge (warm start refused)",
            graph=lambda: _two_cycles(120, 8),
            batch=drop_edge_batch, expect_warm=False),
    }
    chosen = scenarios if scenarios is not None else tuple(catalog)

    rows = []
    for name in chosen:
        sc = catalog[name]
        graph = sc["graph"]()
        key = f"g-{name}"
        jdir = os.path.join(base_dir, name)
        os.makedirs(jdir, exist_ok=True)
        jspec = dict(graph=key, algorithm=sc["algorithm"],
                     params=sc["params"], tenant="t0",
                     max_iterations=sc["max_iter"])

        # warm side: converge once, mutate, resubmit the same query
        jpath = os.path.join(jdir, "warm.jsonl")
        svc = GraphService(spec, journal=jpath)
        svc.load_graph(key, graph)
        svc.submit(JobSpec(**jspec))
        svc.run()
        batch = sc["batch"](graph)
        summary = svc.mutate(key, batch)
        warm_job = svc.submit(JobSpec(**jspec))
        svc.run()
        warm_steps = len(warm_job.result.stats)
        warm_ms = warm_job.result.total_ms

        # cold side: a fresh, equally journaled service loads the
        # already-mutated graph and computes from scratch
        mutated = svc.store.get(key).graph
        cold = GraphService(
            spec, journal=os.path.join(jdir, "cold.jsonl"))
        cold.load_graph(key, mutated)
        cold_job = cold.submit(JobSpec(**jspec))
        cold.run()
        cold_steps = len(cold_job.result.stats)
        cold_ms = cold_job.result.total_ms

        identical = np.array_equal(warm_job.values, cold_job.values)

        # crash + recover the warm journal: the mutation replays
        # exactly once (version preserved), the resubmitted batch
        # dedupes, and nothing is re-queued or appended
        before = len(read_journal(jpath))
        rec = GraphService.recover(jpath, graphs={key: graph})
        redo = rec.mutate(key, batch,
                          idempotency_key=summary["batch_id"])
        replay_noop = (
            rec.store.get(key).version == summary["version"]
            and redo["deduped"] and rec.recovered_jobs == 0
            and len(read_journal(jpath)) == before)

        step_ratio = cold_steps / max(warm_steps, 1)
        ms_ratio = cold_ms / max(warm_ms, 1e-9)
        rows.append((sc["algorithm"], sc["churn"], cold_steps,
                     warm_steps, round(step_ratio, 2),
                     round(cold_ms, 3), round(warm_ms, 3),
                     round(ms_ratio, 2), warm_job.warm_started,
                     identical, replay_noop))
    return rows
