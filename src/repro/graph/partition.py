"""Graph partitioning strategies.

Upper systems partition the graph across distributed nodes (§II-B).  The
middleware is partitioning-agnostic, but the *choice* of partitioner drives
two of the paper's experiments:

* **Workload balancing (Fig. 12(a))** — partition sizes can be tuned to the
  balancing factors of Lemma 2, so every partitioner here accepts optional
  per-node ``shares`` (proportions of edges each node should receive).
* **Synchronization skipping (Fig. 11(b))** — skipping triggers when every
  updated vertex's out-edges are node-local, which depends on how well the
  partitioner preserves clusters.  :func:`clustering_partition` (locality
  preserving, like the paper's real-graph partitions) and
  :func:`hash_partition` (locality destroying, like the uniform synthetic
  case) bracket the two regimes.

Edge-cut partitioners place every edge on the master node of its *source*
vertex (Pregel-style), so message generation is always master-local and
cross-node traffic happens at apply time.  :func:`greedy_vertex_cut`
reproduces PowerGraph's vertex-cut placement where high-degree vertices are
replicated across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import PartitionError
from .graph import Graph


@dataclass
class Subgraph:
    """The slice of a :class:`PartitionedGraph` held by one node."""

    node_id: int
    edge_ids: np.ndarray          # global edge ids stored on this node
    src: np.ndarray               # global source vertex per local edge
    dst: np.ndarray               # global destination vertex per local edge
    weights: np.ndarray
    masters: np.ndarray           # vertices this node owns
    referenced: np.ndarray        # every vertex appearing in a local edge
    mirrors: np.ndarray           # referenced but owned elsewhere

    @property
    def num_edges(self) -> int:
        return int(self.edge_ids.size)

    @property
    def num_masters(self) -> int:
        return int(self.masters.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Subgraph(node={self.node_id}, edges={self.num_edges}, "
                f"masters={self.num_masters}, mirrors={self.mirrors.size})")


@dataclass
class PartitionedGraph:
    """A graph partitioned over ``num_partitions`` distributed nodes."""

    graph: Graph
    strategy: str
    master_of: np.ndarray          # shape (n,): owning node per vertex
    parts: List[Subgraph] = field(default_factory=list)

    @property
    def num_partitions(self) -> int:
        return len(self.parts)

    def edge_counts(self) -> np.ndarray:
        """Edges per node — the d_j of the balancing model (§III-C)."""
        return np.array([p.num_edges for p in self.parts], dtype=np.int64)

    def replication_factor(self) -> float:
        """Average number of nodes a vertex appears on (vertex-cut metric)."""
        if self.graph.num_vertices == 0:
            return 0.0
        appearances = sum(int(p.referenced.size) for p in self.parts)
        return appearances / self.graph.num_vertices

    def out_local_mask(self) -> np.ndarray:
        """``out_local[v]`` — are all of v's out-edge destinations mastered
        on v's own master node?

        This is the §III-B3 synchronization-skipping predicate,
        precomputed: an iteration's sync can be skipped iff every vertex
        updated in it satisfies ``out_local``.
        """
        g = self.graph
        ok = np.ones(g.num_vertices, dtype=bool)
        same = self.master_of[g.src] == self.master_of[g.dst]
        np.logical_and.at(ok, g.src, same)
        return ok

    def local_edge_fraction(self) -> float:
        """Fraction of edges whose endpoints share a master (locality)."""
        g = self.graph
        if g.num_edges == 0:
            return 1.0
        same = self.master_of[g.src] == self.master_of[g.dst]
        return float(same.mean())


def _normalize_shares(num_partitions: int,
                      shares: Optional[Sequence[float]]) -> np.ndarray:
    if shares is None:
        return np.full(num_partitions, 1.0 / num_partitions)
    arr = np.asarray(shares, dtype=np.float64)
    if arr.size != num_partitions:
        raise PartitionError(
            f"{arr.size} shares given for {num_partitions} partitions"
        )
    if (arr < 0).any() or arr.sum() <= 0:
        raise PartitionError("shares must be non-negative and sum > 0")
    return arr / arr.sum()


def _build_edge_cut(graph: Graph, master_of: np.ndarray,
                    strategy: str) -> PartitionedGraph:
    """Assemble subgraphs with each edge on its source's master node."""
    return _build_from_edge_owners(graph, master_of,
                                   master_of[graph.src], strategy)


def _build_from_edge_owners(graph: Graph, master_of: np.ndarray,
                            owner_of_edge: np.ndarray,
                            strategy: str,
                            num_partitions: Optional[int] = None
                            ) -> PartitionedGraph:
    """Assemble subgraphs from an explicit per-edge placement.

    The generic assembler behind every placement policy: edge-cut
    passes ``master_of[src]``, partition deltas pass the surviving
    edges' previous owners so float summation order is preserved
    across a mutation.  ``num_partitions`` pins the part count; when
    omitted it is inferred from the highest master id — callers whose
    high nodes may hold no masters (a delta over a sparse or empty
    graph) must pass it explicitly or the part count collapses.
    """
    if num_partitions is None:
        num_partitions = (int(master_of.max()) + 1 if master_of.size
                          else 1)
    parts: List[Subgraph] = []
    all_vertices = np.arange(graph.num_vertices)
    for node_id in range(num_partitions):
        edge_ids = np.nonzero(owner_of_edge == node_id)[0]
        src = graph.src[edge_ids]
        dst = graph.dst[edge_ids]
        weights = graph.weights[edge_ids]
        masters = all_vertices[master_of == node_id]
        referenced = np.union1d(np.unique(src), np.unique(dst))
        mirrors = np.setdiff1d(referenced, masters, assume_unique=False)
        parts.append(Subgraph(node_id, edge_ids, src, dst, weights,
                              masters, referenced, mirrors))
    return PartitionedGraph(graph, strategy, master_of, parts)


def hash_partition(graph: Graph, num_partitions: int, *,
                   shares: Optional[Sequence[float]] = None,
                   seed: int = 0) -> PartitionedGraph:
    """Locality-destroying hash partitioner (the "synthetic" regime).

    With equal shares the master node is a multiplicative hash of the
    vertex id; with explicit ``shares`` vertices are sampled into nodes
    proportionally (deterministic given ``seed``).
    """
    _check_parts(graph, num_partitions)
    n = graph.num_vertices
    shares_arr = _normalize_shares(num_partitions, shares)
    if shares is None:
        master_of = ((np.arange(n, dtype=np.uint64) * np.uint64(2654435761))
                     % np.uint64(num_partitions)).astype(np.int64)
    else:
        rng = np.random.default_rng(seed)
        master_of = rng.choice(num_partitions, size=n, p=shares_arr)
    return _build_edge_cut(graph, master_of.astype(np.int64), "hash")


def range_partition(graph: Graph, num_partitions: int, *,
                    shares: Optional[Sequence[float]] = None
                    ) -> PartitionedGraph:
    """Contiguous vertex ranges sized so each node's *edge* count matches
    its share (the paper's workload measure is edges, not vertices)."""
    _check_parts(graph, num_partitions)
    n = graph.num_vertices
    shares_arr = _normalize_shares(num_partitions, shares)
    degrees = np.diff(graph.indptr).astype(np.float64)
    cum_edges = np.concatenate([[0.0], np.cumsum(degrees)])
    total = cum_edges[-1] if cum_edges[-1] > 0 else 1.0
    targets = np.cumsum(shares_arr) * total
    master_of = np.zeros(n, dtype=np.int64)
    start = 0
    for node_id in range(num_partitions):
        if node_id == num_partitions - 1:
            end = n
        else:
            end = int(np.searchsorted(cum_edges[1:], targets[node_id],
                                      side="left")) + 1
            end = max(start, min(end, n))
        master_of[start:end] = node_id
        start = end
    return _build_edge_cut(graph, master_of, "range")


def clustering_partition(graph: Graph, num_partitions: int, *,
                         shares: Optional[Sequence[float]] = None,
                         seed: int = 0) -> PartitionedGraph:
    """Locality-preserving partitioner (BFS region growing).

    Grows partitions one at a time by BFS over the undirected structure
    until the partition reaches its edge-share budget, mimicking the
    clustering-based partitioning the paper cites ([22]) and producing the
    high partition locality that makes synchronization skipping effective
    on real graphs.
    """
    _check_parts(graph, num_partitions)
    n = graph.num_vertices
    shares_arr = _normalize_shares(num_partitions, shares)
    undirected = graph.to_undirected()
    degrees = np.diff(graph.indptr).astype(np.float64)
    total_edges = max(float(degrees.sum()), 1.0)
    budgets = shares_arr * total_edges

    rng = np.random.default_rng(seed)
    master_of = np.full(n, -1, dtype=np.int64)
    unassigned = list(rng.permutation(n))
    cursor = 0

    for node_id in range(num_partitions):
        filled = 0.0
        frontier: List[int] = []
        budget = budgets[node_id]
        is_last = node_id == num_partitions - 1
        while (is_last or filled < budget) and cursor <= n:
            if not frontier:
                # find a fresh seed vertex
                while cursor < len(unassigned) and \
                        master_of[unassigned[cursor]] != -1:
                    cursor += 1
                if cursor >= len(unassigned):
                    break
                frontier.append(int(unassigned[cursor]))
                cursor += 1
            v = frontier.pop()
            if master_of[v] != -1:
                continue
            master_of[v] = node_id
            filled += degrees[v]
            for u in undirected.out_neighbors(v):
                if master_of[u] == -1:
                    frontier.append(int(u))
            if not is_last and filled >= budget:
                break
    # any stragglers go to the last node
    master_of[master_of == -1] = num_partitions - 1
    return _build_edge_cut(graph, master_of, "clustering")


def greedy_vertex_cut(graph: Graph, num_partitions: int, *,
                      shares: Optional[Sequence[float]] = None
                      ) -> PartitionedGraph:
    """PowerGraph-style greedy vertex-cut edge placement.

    Each edge goes to the node that already hosts both endpoints, else one
    endpoint, else the least-loaded node — the classic greedy heuristic of
    Gonzalez et al. [3].  Vertex masters are then assigned to the node
    holding most of the vertex's edges.  ``shares`` scale the load metric
    so heterogeneous nodes can take proportionally more edges.
    """
    _check_parts(graph, num_partitions)
    n, m = graph.num_vertices, graph.num_edges
    shares_arr = _normalize_shares(num_partitions, shares)
    capacity = np.maximum(shares_arr, 1e-12)

    replicas = [set() for _ in range(n)]        # nodes each vertex touches
    load = np.zeros(num_partitions, dtype=np.float64)
    owner_of_edge = np.zeros(m, dtype=np.int64)

    src_arr, dst_arr = graph.src, graph.dst
    for e in range(m):
        s, d = int(src_arr[e]), int(dst_arr[e])
        rs, rd = replicas[s], replicas[d]
        # PowerGraph greedy objective: reward reusing existing replicas,
        # penalize relative (capacity-scaled) load so no node starves.
        scaled = load / capacity
        lo, hi = scaled.min(), scaled.max()
        span = (hi - lo) if hi > lo else 1.0
        best_node, best_score = 0, -np.inf
        for p in range(num_partitions):
            score = (1.0 if p in rs else 0.0) + (1.0 if p in rd else 0.0)
            # balance weight > max replica reward (2.0) so a node that runs
            # a full span ahead of the least-loaded node always loses the
            # placement, which bounds the imbalance (HDRF-style, lambda=3).
            score -= 3.0 * (scaled[p] - lo) / span
            if score > best_score:
                best_node, best_score = p, score
        node = best_node
        owner_of_edge[e] = node
        load[node] += 1.0
        rs.add(node)
        rd.add(node)

    # master = node with the most incident edges for the vertex
    incidence = np.zeros((num_partitions, n), dtype=np.int64)
    np.add.at(incidence, (owner_of_edge, src_arr), 1)
    np.add.at(incidence, (owner_of_edge, dst_arr), 1)
    master_of = np.asarray(incidence.argmax(axis=0), dtype=np.int64)

    all_vertices = np.arange(n)
    parts: List[Subgraph] = []
    for node_id in range(num_partitions):
        edge_ids = np.nonzero(owner_of_edge == node_id)[0]
        src = graph.src[edge_ids]
        dst = graph.dst[edge_ids]
        weights = graph.weights[edge_ids]
        masters = all_vertices[master_of == node_id]
        referenced = np.union1d(np.unique(src), np.unique(dst))
        mirrors = np.setdiff1d(referenced, masters)
        parts.append(Subgraph(node_id, edge_ids, src, dst, weights,
                              masters, referenced, mirrors))
    return PartitionedGraph(graph, "greedy-vertex-cut", master_of, parts)


PARTITIONERS = {
    "hash": hash_partition,
    "range": range_partition,
    "clustering": clustering_partition,
    "greedy-vertex-cut": greedy_vertex_cut,
}


def partition(graph: Graph, num_partitions: int, strategy: str = "hash",
              **kwargs) -> PartitionedGraph:
    """Dispatch to a named partitioning strategy."""
    if strategy not in PARTITIONERS:
        raise PartitionError(
            f"unknown strategy {strategy!r}; available: {sorted(PARTITIONERS)}"
        )
    return PARTITIONERS[strategy](graph, num_partitions, **kwargs)


def _check_parts(graph: Graph, num_partitions: int) -> None:
    if num_partitions < 1:
        raise PartitionError(f"need >=1 partitions, got {num_partitions}")
    if graph.num_vertices == 0 and num_partitions > 1:
        raise PartitionError("cannot partition an empty graph")
