"""Scaled-down twins of the paper's Table I datasets.

The paper evaluates on six real graphs (Orkut, Wiki-topcats, LiveJournal,
WRN, Twitter, UK-2007-02).  We cannot ship those graphs, so each is
replaced by a deterministic synthetic twin at 1/1000 scale that preserves
the properties the experiments depend on:

* the |E|/|V| ratio (which sets per-node workload — the paper notes "the
  workload of a distributed node is proportional to the number of edges
  stored in it");
* the degree-distribution family (power-law for social/web graphs via
  R-MAT, near-uniform sparse grid for the road network);
* the relative ordering of sizes (Twitter and UK-2007 are the two graphs
  that overflow a single simulated GPU, reproducing Fig. 9(b)).

``load_dataset(name)`` returns the twin; ``DATASETS`` holds the metadata
(including the paper's original sizes) used by the Table I benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import GraphError
from .graph import Graph
from .generators import clustered_communities, rmat, road_network, uniform_random

SCALE = 1000  # paper sizes are divided by this factor


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one Table I dataset and its synthetic twin."""

    name: str
    paper_vertices: int     # original |V| from Table I
    paper_edges: int        # original |E| from Table I
    kind: str               # "Social", "Network", or "Road" per Table I
    builder: Callable[["DatasetSpec"], Graph]

    @property
    def scaled_vertices(self) -> int:
        return max(64, self.paper_vertices // SCALE)

    @property
    def scaled_edges(self) -> int:
        return max(256, self.paper_edges // SCALE)

    @property
    def average_degree(self) -> float:
        return self.paper_edges / self.paper_vertices

    def build(self) -> Graph:
        return self.builder(self)


def _social(spec: DatasetSpec) -> Graph:
    """Power-law twin: R-MAT with strong skew and community structure."""
    return rmat(spec.scaled_vertices, spec.scaled_edges,
                seed=_seed_for(spec.name), name=spec.name)


def _network(spec: DatasetSpec) -> Graph:
    """Web-style hyperlink network: slightly milder skew than social."""
    return rmat(spec.scaled_vertices, spec.scaled_edges,
                a=0.45, b=0.22, c=0.22, seed=_seed_for(spec.name),
                name=spec.name)


def _road(spec: DatasetSpec) -> Graph:
    """Road-network twin: grid with |E| ≈ 1.2 |V|."""
    side = max(8, int(spec.scaled_vertices ** 0.5))
    return road_network(side, side, seed=_seed_for(spec.name), name=spec.name)


def _seed_for(name: str) -> int:
    return sum(ord(ch) for ch in name)


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("orkut", 3_072_441, 117_185_083, "Social", _social),
        DatasetSpec("wiki-topcats", 1_791_489, 28_511_807, "Network", _network),
        DatasetSpec("livejournal", 4_847_571, 68_993_773, "Social", _social),
        DatasetSpec("wrn", 23_947_347, 28_854_312, "Road", _road),
        DatasetSpec("twitter", 41_652_230, 1_468_365_182, "Social", _social),
        DatasetSpec("uk-2007-02", 110_123_614, 3_944_932_566, "Social", _social),
    ]
}

DEFAULT_DATASET = "orkut"  # the paper's default: highest average degree


def dataset_names() -> List[str]:
    """Names in Table I order."""
    return list(DATASETS)


def load_dataset(name: str) -> Graph:
    """Build the deterministic synthetic twin of a Table I dataset."""
    if name not in DATASETS:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[name].build()


def load_synthetic_uniform(num_vertices: int = 3000, num_edges: int = 120_000,
                           seed: int = 7) -> Graph:
    """The paper's Fig. 11 'synthetic dataset': uniform random graph."""
    return uniform_random(num_vertices, num_edges, seed=seed, name="synthetic")


def load_synthetic_clustered(num_communities: int = 16,
                             community_size: int = 200,
                             seed: int = 7) -> Graph:
    """A strongly clustered graph (the regime where sync skipping shines)."""
    return clustered_communities(num_communities, community_size, seed=seed,
                                 name="clustered")
