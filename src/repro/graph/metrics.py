"""Graph and partition quality metrics.

Used by the balancing machinery and the documentation examples to reason
about partitioner choices: edge cut and locality (what drives
synchronization volume and skipping, §III-B), load balance (the §III-C
objective), and replication (the vertex-cut storage cost).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import GraphError
from .graph import Graph
from .partition import PartitionedGraph


def degree_histogram(graph: Graph, bins: int = 10) -> Dict[str, np.ndarray]:
    """Log-ish histogram of out-degrees: ``{"edges": counts, "bounds"}``."""
    if bins < 1:
        raise GraphError(f"need >=1 bins, got {bins}")
    degrees = graph.out_degrees()
    max_deg = int(degrees.max()) if degrees.size else 0
    bounds = np.unique(np.geomspace(1, max(max_deg, 1) + 1,
                                    bins + 1).astype(np.int64))
    counts, _ = np.histogram(degrees, bins=np.concatenate([[0], bounds]))
    return {"counts": counts, "bounds": np.concatenate([[0], bounds])}


def degree_skew(graph: Graph) -> float:
    """Top-5% degree share — near 0.05 for uniform, large for power law."""
    degrees = np.sort(graph.out_degrees())[::-1]
    total = degrees.sum()
    if total == 0:
        return 0.0
    top = max(1, degrees.size // 20)
    return float(degrees[:top].sum() / total)


def edge_cut(pgraph: PartitionedGraph) -> int:
    """Edges whose endpoints have different master nodes."""
    g = pgraph.graph
    if g.num_edges == 0:
        return 0
    return int((pgraph.master_of[g.src] != pgraph.master_of[g.dst]).sum())


def edge_cut_fraction(pgraph: PartitionedGraph) -> float:
    g = pgraph.graph
    if g.num_edges == 0:
        return 0.0
    return edge_cut(pgraph) / g.num_edges


def load_imbalance(pgraph: PartitionedGraph) -> float:
    """max / mean of per-node edge counts (1.0 = perfectly balanced)."""
    counts = pgraph.edge_counts().astype(np.float64)
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)


def weighted_imbalance(pgraph: PartitionedGraph,
                       capacities) -> float:
    """max over nodes of (edges_j / capacity_j), normalized by the ideal.

    The §III-C objective evaluated on an actual partitioning: 1.0 means
    the partition sizes are exactly proportional to node capacities.
    """
    counts = pgraph.edge_counts().astype(np.float64)
    caps = np.asarray(capacities, dtype=np.float64)
    if caps.shape != counts.shape:
        raise GraphError(
            f"{caps.size} capacities for {counts.size} partitions"
        )
    if (caps <= 0).any():
        raise GraphError("capacities must be positive")
    total = counts.sum()
    if total == 0:
        return 1.0
    ideal = total / caps.sum()          # finish time if perfectly balanced
    actual = (counts / caps).max()
    return float(actual / ideal)


def skip_potential(pgraph: PartitionedGraph) -> float:
    """Fraction of vertices whose out-edges are all partition-local —
    the static upper bound on synchronization skipping (§III-B3)."""
    mask = pgraph.out_local_mask()
    if mask.size == 0:
        return 1.0
    return float(mask.mean())


def partition_report(pgraph: PartitionedGraph) -> Dict[str, float]:
    """All partition metrics in one dictionary (for logs and examples)."""
    return {
        "partitions": float(pgraph.num_partitions),
        "edge_cut_fraction": edge_cut_fraction(pgraph),
        "local_edge_fraction": pgraph.local_edge_fraction(),
        "replication_factor": pgraph.replication_factor(),
        "load_imbalance": load_imbalance(pgraph),
        "skip_potential": skip_potential(pgraph),
    }
