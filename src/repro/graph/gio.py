"""Edge-list IO.

Plain-text edge lists in the SNAP style the paper's datasets ship in::

    # comment lines start with '#'
    src dst [weight]

Lines are whitespace separated; vertices are non-negative integers.
"""

from __future__ import annotations

import os
from typing import List, Optional, TextIO, Union

import numpy as np

from ..errors import GraphError
from .graph import Graph

PathLike = Union[str, "os.PathLike[str]"]


def save_edge_list(graph: Graph, path: PathLike,
                   write_weights: bool = True) -> None:
    """Write a graph as a SNAP-style edge list."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# {graph.name}\n")
        f.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for s, d, w in graph.edges():
            if write_weights:
                f.write(f"{s} {d} {w:.6g}\n")
            else:
                f.write(f"{s} {d}\n")


def load_edge_list(path: PathLike, num_vertices: Optional[int] = None,
                   name: Optional[str] = None) -> Graph:
    """Read a SNAP-style edge list.

    When ``num_vertices`` is omitted it is inferred as ``max id + 1``.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    weights: List[float] = []
    saw_weight = False
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'src dst [w]'")
            try:
                s, d = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: bad vertex id") from exc
            srcs.append(s)
            dsts.append(d)
            if len(parts) >= 3:
                saw_weight = True
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphError(f"{path}:{lineno}: bad weight") from exc
            else:
                weights.append(1.0)
    if num_vertices is None:
        num_vertices = (max(max(srcs), max(dsts)) + 1) if srcs else 0
    graph_name = name if name is not None else str(path)
    return Graph.from_edges(num_vertices, np.asarray(srcs, dtype=np.int64),
                            np.asarray(dsts, dtype=np.int64),
                            np.asarray(weights) if saw_weight else None,
                            name=graph_name)


def save_npz(graph: Graph, path: PathLike) -> None:
    """Save a graph in compressed binary form (numpy ``.npz``).

    Orders of magnitude faster than edge lists for the larger twins.
    """
    np.savez_compressed(
        path,
        num_vertices=np.int64(graph.num_vertices),
        src=graph.src,
        dst=graph.dst,
        weights=graph.weights,
        name=np.array(graph.name),
    )


def load_npz(path: PathLike) -> Graph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        for key in ("num_vertices", "src", "dst", "weights", "name"):
            if key not in data:
                raise GraphError(f"{path}: missing array {key!r}")
        return Graph.from_edges(
            int(data["num_vertices"]),
            data["src"],
            data["dst"],
            data["weights"],
            name=str(data["name"]),
        )
