"""Streaming graph mutations: batched edits, effects, warm-start plans.

Static-graph batch runs are the wrong shape for a service whose graphs
drift all day — followers appear, roads close, weights get retuned.
This module is the graph half of the streaming subsystem:

* :class:`MutationBatch` — one atomic batch of edge/vertex edits
  (add / remove / reweight), JSON round-trippable for the wire protocol
  and the journal, with a content fingerprint for idempotency.
* ``batch.apply(graph)`` — functional application: builds a **new**
  immutable CSR :class:`~repro.graph.graph.Graph` (vertex ids are
  stable; a removed vertex becomes isolated, nothing is renumbered, so
  per-vertex value arrays stay aligned across versions) plus a
  :class:`MutationEffect` describing what changed.
* :class:`MutationLog` — the per-key ordered log of applied batches
  the :class:`~repro.serve.store.GraphStore` keeps, so any
  version-to-version delta can be reconstructed without retaining old
  graphs.
* :func:`plan_warm_start` — turns "previous fixpoint + effects" into a
  checkpoint-shaped seed for ``run_stepwise(resume_from=...)``: the
  dirty frontier of touched vertices for monotone algorithms, or an
  all-active seed for contraction fixpoints like PageRank.

Warm-start policy (the incremental-algorithm caveats, in one place):

* ``incremental = "frontier"`` (CC, SSSP): the algorithm is monotone —
  values only ever improve, and the fixpoint is unique — so seeding
  from *any* valid bound converges to the bitwise-identical fixpoint.
  The old fixpoint is a valid bound only for **growing** mutations
  (edge adds, weight decreases); removals and weight increases
  invalidate it, and the planner refuses (the caller falls back to a
  cold start — still correct, just not incremental).
* ``incremental = "fixpoint"`` (PageRank): the damped update is a
  contraction with a unique attracting fixpoint, so any seed converges
  to the same stationary point — warm starts are safe under *every*
  mutation, but every vertex must stay active (PageRank recomputes all
  values each superstep).  Bitwise identity with a cold run holds
  whenever the float update map is unchanged (e.g. pure reweights,
  which weight-oblivious PageRank never reads); a structural change
  perturbs the map, and the two trajectories then agree to round-off
  rather than to the bit.
* algorithms without an ``incremental`` attribute always recompute
  from scratch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from .graph import Graph


def _as_ids(values, label: str) -> np.ndarray:
    arr = np.asarray(values if values is not None else [], dtype=np.int64)
    if arr.ndim != 1:
        raise GraphError(f"{label} must be 1-D, got shape {arr.shape}")
    if arr.size and arr.min() < 0:
        raise GraphError(f"{label} contains negative ids")
    return arr


def _as_weights(values, size: int, label: str) -> np.ndarray:
    if values is None:
        return np.ones(size, dtype=np.float64)
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape != (size,):
        raise GraphError(
            f"{label} has shape {arr.shape}, expected ({size},)")
    return arr


@dataclass(frozen=True)
class MutationBatch:
    """One atomic batch of graph edits.

    All arrays are coerced and validated at construction; ``apply``
    validates endpoints against the target graph.  Edge identity is the
    ``(src, dst)`` pair — removing or reweighting a pair touches every
    parallel copy of that edge.
    """

    add_src: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))
    add_dst: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))
    add_weights: Optional[np.ndarray] = None
    remove_src: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))
    remove_dst: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))
    update_src: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))
    update_dst: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))
    update_weights: Optional[np.ndarray] = None
    add_vertices: int = 0
    remove_vertices: np.ndarray = field(default_factory=lambda: np.empty(
        0, dtype=np.int64))

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "add_src", _as_ids(self.add_src, "add_src"))
        set_(self, "add_dst", _as_ids(self.add_dst, "add_dst"))
        set_(self, "remove_src", _as_ids(self.remove_src, "remove_src"))
        set_(self, "remove_dst", _as_ids(self.remove_dst, "remove_dst"))
        set_(self, "update_src", _as_ids(self.update_src, "update_src"))
        set_(self, "update_dst", _as_ids(self.update_dst, "update_dst"))
        set_(self, "remove_vertices",
             _as_ids(self.remove_vertices, "remove_vertices"))
        if self.add_src.size != self.add_dst.size:
            raise GraphError(
                f"add_src has {self.add_src.size} ids but add_dst has "
                f"{self.add_dst.size}")
        if self.remove_src.size != self.remove_dst.size:
            raise GraphError(
                f"remove_src has {self.remove_src.size} ids but "
                f"remove_dst has {self.remove_dst.size}")
        if self.update_src.size != self.update_dst.size:
            raise GraphError(
                f"update_src has {self.update_src.size} ids but "
                f"update_dst has {self.update_dst.size}")
        set_(self, "add_weights", _as_weights(
            self.add_weights, self.add_src.size, "add_weights"))
        if self.update_weights is None and self.update_src.size:
            raise GraphError("update edges need update_weights")
        set_(self, "update_weights", _as_weights(
            self.update_weights, self.update_src.size, "update_weights"))
        if self.add_vertices < 0:
            raise GraphError(
                f"add_vertices must be >= 0, got {self.add_vertices}")
        set_(self, "add_vertices", int(self.add_vertices))

    # -- introspection ------------------------------------------------------------------

    @property
    def num_changes(self) -> int:
        return int(self.add_src.size + self.remove_src.size
                   + self.update_src.size + self.add_vertices
                   + self.remove_vertices.size)

    @property
    def is_empty(self) -> bool:
        return self.num_changes == 0

    @property
    def shrinking(self) -> bool:
        """Does the batch remove structure (edges or vertices)?"""
        return bool(self.remove_src.size or self.remove_vertices.size)

    def fingerprint(self) -> str:
        """Content digest — the default idempotency key for a batch."""
        h = hashlib.sha256()
        for arr in (self.add_src, self.add_dst, self.add_weights,
                    self.remove_src, self.remove_dst, self.update_src,
                    self.update_dst, self.update_weights,
                    self.remove_vertices):
            h.update(np.ascontiguousarray(arr).tobytes())
            h.update(b"|")
        h.update(str(self.add_vertices).encode())
        return h.hexdigest()[:16]

    # -- wire / journal round trip ------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        if self.add_src.size:
            doc["add"] = {"src": self.add_src.tolist(),
                          "dst": self.add_dst.tolist(),
                          "weights": self.add_weights.tolist()}
        if self.remove_src.size:
            doc["remove"] = {"src": self.remove_src.tolist(),
                             "dst": self.remove_dst.tolist()}
        if self.update_src.size:
            doc["update"] = {"src": self.update_src.tolist(),
                             "dst": self.update_dst.tolist(),
                             "weights": self.update_weights.tolist()}
        if self.add_vertices:
            doc["add_vertices"] = self.add_vertices
        if self.remove_vertices.size:
            doc["remove_vertices"] = self.remove_vertices.tolist()
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "MutationBatch":
        if not isinstance(doc, Mapping):
            raise GraphError(
                f"mutation batch must be an object, got {type(doc).__name__}")
        known = {"add", "remove", "update", "add_vertices",
                 "remove_vertices"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise GraphError(
                f"unknown mutation batch field(s): {', '.join(unknown)}")

        def section(name: str, want_weights: bool) -> Dict[str, Any]:
            sec = doc.get(name)
            if sec is None:
                return {}
            if not isinstance(sec, Mapping):
                raise GraphError(f"batch field {name!r} must be an object")
            extra = sorted(set(sec) - ({"src", "dst", "weights"}
                                       if want_weights else {"src", "dst"}))
            if extra:
                raise GraphError(
                    f"unknown field(s) in batch {name!r}: "
                    f"{', '.join(extra)}")
            if "src" not in sec or "dst" not in sec:
                raise GraphError(f"batch {name!r} needs src and dst lists")
            out = {f"{name}_src": sec["src"], f"{name}_dst": sec["dst"]}
            if want_weights and "weights" in sec:
                out[f"{name}_weights"] = sec["weights"]
            return out

        kwargs: Dict[str, Any] = {}
        kwargs.update(section("add", True))
        kwargs.update(section("remove", False))
        kwargs.update(section("update", True))
        av = doc.get("add_vertices", 0)
        if not isinstance(av, int) or isinstance(av, bool):
            raise GraphError("add_vertices must be an integer")
        kwargs["add_vertices"] = av
        kwargs["remove_vertices"] = doc.get("remove_vertices", [])
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise GraphError(f"bad mutation batch: {exc}") from exc

    # -- application --------------------------------------------------------------------

    def apply(self, graph: Graph) -> Tuple[Graph, "MutationEffect"]:
        """Apply to ``graph``, returning ``(new_graph, effect)``.

        Functional: the input graph is untouched.  Vertex ids are
        stable — ``add_vertices`` appends ids ``n .. n+k-1``, and a
        removed vertex keeps its id but loses every incident edge.
        Removing or updating a ``(src, dst)`` pair that does not exist
        raises :class:`~repro.errors.GraphError` (batches describe
        observed edits, so a miss is a corruption signal; replay-level
        idempotency belongs to batch ids, not edge-level blindness).
        """
        n_old = graph.num_vertices
        n_new = n_old + self.add_vertices
        for label, arr, bound in (
                ("add_src", self.add_src, n_new),
                ("add_dst", self.add_dst, n_new),
                ("remove_src", self.remove_src, n_old),
                ("remove_dst", self.remove_dst, n_old),
                ("update_src", self.update_src, n_old),
                ("update_dst", self.update_dst, n_old),
                ("remove_vertices", self.remove_vertices, n_old)):
            if arr.size and arr.max() >= bound:
                raise GraphError(
                    f"{label} id {int(arr.max())} out of range for "
                    f"{bound} vertices")

        span = np.int64(max(n_new, 1))
        edge_keys = graph.src * span + graph.dst
        keep = np.ones(graph.num_edges, dtype=bool)

        if self.remove_src.size:
            rkeys = self.remove_src * span + self.remove_dst
            missing = ~np.isin(rkeys, edge_keys)
            if missing.any():
                i = int(np.nonzero(missing)[0][0])
                raise GraphError(
                    f"remove targets missing edge "
                    f"({int(self.remove_src[i])}, "
                    f"{int(self.remove_dst[i])})")
            keep &= ~np.isin(edge_keys, rkeys)
        if self.remove_vertices.size:
            gone = np.zeros(n_new, dtype=bool)
            gone[self.remove_vertices] = True
            keep &= ~(gone[graph.src] | gone[graph.dst])

        weights = graph.weights.astype(np.float64, copy=True)
        weight_increases = 0
        dec_src: np.ndarray = np.empty(0, dtype=np.int64)
        dec_dst: np.ndarray = np.empty(0, dtype=np.int64)
        if self.update_src.size:
            ukeys = self.update_src * span + self.update_dst
            if self.remove_src.size and np.isin(
                    ukeys, self.remove_src * span + self.remove_dst).any():
                raise GraphError(
                    "batch both removes and updates the same edge")
            # last update to a pair wins
            rev_keys = ukeys[::-1]
            uniq, first = np.unique(rev_keys, return_index=True)
            uw = self.update_weights[::-1][first]
            missing = ~np.isin(uniq, edge_keys)
            if missing.any():
                k = int(uniq[np.nonzero(missing)[0][0]])
                raise GraphError(
                    f"update targets missing edge "
                    f"({k // int(span)}, {k % int(span)})")
            pos = np.searchsorted(uniq, edge_keys)
            pos_c = np.minimum(pos, uniq.size - 1)
            hit = (pos < uniq.size) & (uniq[pos_c] == edge_keys)
            old_w = weights[hit]
            new_w = uw[pos_c[hit]]
            weight_increases = int(np.count_nonzero(new_w > old_w))
            dec = new_w < old_w
            dec_src = graph.src[hit][dec]
            dec_dst = graph.dst[hit][dec]
            weights[hit] = new_w

        new_src = np.concatenate([graph.src[keep], self.add_src])
        new_dst = np.concatenate([graph.dst[keep], self.add_dst])
        new_wts = np.concatenate([weights[keep], self.add_weights])
        new_graph = Graph.from_edges(n_new, new_src, new_dst, new_wts,
                                     name=graph.name)
        # Provenance of each CSR edge in the new graph: the edge id it
        # had before the mutation, or -1 for a freshly added edge.
        # Mirrors the stable source sort inside Graph.from_edges so
        # partition deltas can carry edge placement forward exactly.
        origin = np.concatenate([
            np.nonzero(keep)[0],
            np.full(self.add_src.size, -1, dtype=np.int64)])
        edge_origin = origin[np.argsort(new_src, kind="stable")]

        touched = np.unique(np.concatenate([
            self.add_src, self.add_dst, dec_src, dec_dst,
            np.arange(n_old, n_new, dtype=np.int64)]))
        effect = MutationEffect(
            from_vertices=n_old, to_vertices=n_new,
            edges_added=int(self.add_src.size),
            edges_removed=int(graph.num_edges - int(keep.sum())),
            edges_updated=int(self.update_src.size),
            weight_increases=weight_increases,
            shrinking=self.shrinking,
            touched=touched,
            edge_origin=edge_origin)
        return new_graph, effect


@dataclass(frozen=True)
class MutationEffect:
    """What a batch did to a concrete graph — computed at apply time,
    so warm-start planning never needs the pre-mutation graph."""

    from_vertices: int
    to_vertices: int
    edges_added: int
    edges_removed: int
    edges_updated: int
    weight_increases: int
    shrinking: bool
    #: dirty frontier: endpoints of added edges, endpoints of
    #: weight-decreased edges, and freshly added vertices
    touched: np.ndarray
    #: per new-graph edge: the edge id it had pre-mutation, -1 if added
    #: (lets partition deltas preserve placement, hence float summation
    #: order, for surviving edges)
    edge_origin: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def monotone_safe(self) -> bool:
        """May a monotone algorithm keep its old fixpoint as a seed?

        Only growing mutations preserve "old fixpoint is a valid
        bound": removals and weight increases can push the true
        fixpoint *worse* than the seed, which a monotone update can
        never recover from.
        """
        return not self.shrinking and self.weight_increases == 0


@dataclass(frozen=True)
class MutationRecord:
    """One applied batch in a key's mutation log."""

    batch_id: str
    from_version: int
    to_version: int
    batch: MutationBatch
    effect: MutationEffect


class MutationLog:
    """Per-key ordered log of applied mutation batches.

    The store appends a :class:`MutationRecord` per applied batch; the
    service reads it back to (a) dedupe replayed batch ids and (b)
    reconstruct the effect chain between any two versions for
    warm-start planning.
    """

    def __init__(self) -> None:
        self._records: Dict[str, List[MutationRecord]] = {}
        self._by_id: Dict[Tuple[str, str], MutationRecord] = {}

    def record(self, key: str, record: MutationRecord) -> None:
        self._records.setdefault(key, []).append(record)
        self._by_id[(key, record.batch_id)] = record

    def applied(self, key: str, batch_id: str) -> Optional[MutationRecord]:
        """The record a batch id already produced, if any (idempotency)."""
        return self._by_id.get((key, batch_id))

    def records(self, key: str) -> Tuple[MutationRecord, ...]:
        return tuple(self._records.get(key, ()))

    def drop(self, key: str) -> None:
        """Forget a key's history (unload, or a wholesale replace)."""
        for rec in self._records.pop(key, ()):  # pragma: no branch
            self._by_id.pop((key, rec.batch_id), None)

    def effects_between(self, key: str, from_version: int,
                        to_version: int
                        ) -> Optional[List[MutationEffect]]:
        """The effect chain ``from_version -> to_version``, or ``None``
        if the log cannot prove the versions are mutation-connected
        (e.g. a wholesale replace broke the chain)."""
        if from_version == to_version:
            return []
        chain: List[MutationEffect] = []
        at = from_version
        for rec in self._records.get(key, ()):
            if rec.from_version == at:
                chain.append(rec.effect)
                at = rec.to_version
                if at == to_version:
                    return chain
        return None


@dataclass
class WarmStart:
    """A checkpoint-shaped seed for ``run_stepwise(resume_from=...)``.

    Duck-types :class:`~repro.fault.checkpoint.Checkpoint`: iteration
    zero, seeded values, and the dirty frontier as the active set.
    """

    values: np.ndarray
    active: np.ndarray
    iteration: int = 0
    cost_ms: float = 0.0


def plan_warm_start(algorithm, old_values: np.ndarray,
                    effects: Sequence[MutationEffect],
                    new_graph: Graph) -> Optional[WarmStart]:
    """Build a warm-start seed, or ``None`` when only a cold start is
    provably bit-identical (see the module docstring for the policy).
    """
    mode = getattr(algorithm, "incremental", None)
    if mode is None:
        return None
    old = np.asarray(old_values)
    state = algorithm.init_state(new_graph)
    values = np.array(state.values, copy=True)
    if old.ndim != values.ndim or (
            old.ndim == 2 and old.shape[1] != values.shape[1]):
        return None  # parameterization changed shape: seed is unusable
    n_new = new_graph.num_vertices
    n_common = min(old.shape[0], n_new)
    if mode == "fixpoint":
        values[:n_common] = old[:n_common]
        return WarmStart(values=values,
                         active=np.ones(n_new, dtype=bool))
    if mode != "frontier":
        raise GraphError(
            f"unknown incremental mode {mode!r} on "
            f"{type(algorithm).__name__}")
    if any(not e.monotone_safe for e in effects):
        return None
    values[:n_common] = old[:n_common]
    active = np.zeros(n_new, dtype=bool)
    for e in effects:
        ids = e.touched[e.touched < n_new]
        active[ids] = True
    return WarmStart(values=values, active=active)
