"""Core graph data structure.

A :class:`Graph` is an immutable directed multigraph stored in CSR
(compressed sparse row) form over numpy arrays — the natural layout for the
edge-centric block processing GX-Plug's daemons use (§II-B) and compact
enough to hold the scaled-down twins of the paper's datasets (Table I).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..errors import GraphError


class Graph:
    """Immutable directed graph in CSR form.

    Attributes
    ----------
    indptr : np.ndarray of int64, shape (n+1,)
        CSR row pointer; out-edges of vertex ``v`` are
        ``dst[indptr[v]:indptr[v+1]]``.
    dst : np.ndarray of int64, shape (m,)
        Destination vertex of each edge, grouped by source.
    src : np.ndarray of int64, shape (m,)
        Source vertex of each edge (redundant with indptr; kept because the
        middleware's edge blocks carry explicit source ids).
    weights : np.ndarray of float64, shape (m,)
        Edge weights (1.0 when the input had none).
    """

    __slots__ = ("indptr", "src", "dst", "weights", "name")

    def __init__(self, indptr: np.ndarray, src: np.ndarray, dst: np.ndarray,
                 weights: np.ndarray, name: str = "graph") -> None:
        self.indptr = indptr
        self.src = src
        self.dst = dst
        self.weights = weights
        self.name = name

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int,
                   src: Iterable[int], dst: Iterable[int],
                   weights: Optional[Iterable[float]] = None,
                   name: str = "graph") -> "Graph":
        """Build a graph from parallel source/destination sequences.

        Edges are sorted by source (stable), so edge ids in the CSR layout
        may differ from input order; weights follow their edges.
        """
        src_arr = np.asarray(list(src) if not isinstance(src, np.ndarray) else src,
                             dtype=np.int64)
        dst_arr = np.asarray(list(dst) if not isinstance(dst, np.ndarray) else dst,
                             dtype=np.int64)
        if src_arr.shape != dst_arr.shape:
            raise GraphError(
                f"src/dst length mismatch: {src_arr.size} vs {dst_arr.size}"
            )
        if num_vertices < 0:
            raise GraphError(f"negative vertex count {num_vertices}")
        if src_arr.size:
            lo = min(src_arr.min(), dst_arr.min())
            hi = max(src_arr.max(), dst_arr.max())
            if lo < 0 or hi >= num_vertices:
                raise GraphError(
                    f"edge endpoint out of range [0, {num_vertices}): "
                    f"saw [{lo}, {hi}]"
                )
        if weights is None:
            w_arr = np.ones(src_arr.size, dtype=np.float64)
        else:
            w_arr = np.asarray(
                list(weights) if not isinstance(weights, np.ndarray) else weights,
                dtype=np.float64)
            if w_arr.shape != src_arr.shape:
                raise GraphError(
                    f"weights length mismatch: {w_arr.size} vs {src_arr.size}"
                )
        order = np.argsort(src_arr, kind="stable")
        src_sorted = src_arr[order]
        dst_sorted = dst_arr[order]
        w_sorted = w_arr[order]
        counts = np.bincount(src_sorted, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, src_sorted, dst_sorted, w_sorted, name=name)

    @classmethod
    def empty(cls, num_vertices: int = 0, name: str = "empty") -> "Graph":
        return cls.from_edges(num_vertices, [], [], name=name)

    # -- basic properties ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.dst.size)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, shape (n,)."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex, shape (n,)."""
        return np.bincount(self.dst, minlength=self.num_vertices)

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.out_degrees().max())

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # -- navigation ----------------------------------------------------------

    def out_edges(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(destinations, weights)`` of vertex ``v``'s out-edges."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.dst[lo:hi], self.weights[lo:hi]

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.out_edges(v)[0]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` triples in CSR order."""
        for i in range(self.num_edges):
            yield int(self.src[i]), int(self.dst[i]), float(self.weights[i])

    # -- transforms ----------------------------------------------------------

    def reverse(self) -> "Graph":
        """The graph with every edge direction flipped."""
        return Graph.from_edges(self.num_vertices, self.dst, self.src,
                                self.weights, name=f"{self.name}-rev")

    def to_undirected(self) -> "Graph":
        """Add the reverse of every edge (doubles the edge count)."""
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        w = np.concatenate([self.weights, self.weights])
        return Graph.from_edges(self.num_vertices, src, dst, w,
                                name=f"{self.name}-undirected")

    def subgraph_edges(self, edge_ids: np.ndarray) -> Tuple[np.ndarray, ...]:
        """``(src, dst, weights)`` arrays for the given edge ids."""
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if edge_ids.size and (edge_ids.min() < 0 or
                              edge_ids.max() >= self.num_edges):
            raise GraphError("edge id out of range")
        return self.src[edge_ids], self.dst[edge_ids], self.weights[edge_ids]

    # -- misc ------------------------------------------------------------------

    def memory_footprint(self, bytes_per_edge: int = 16,
                         bytes_per_vertex: int = 8) -> int:
        """Simulated device footprint used for the OOM checks of Fig. 9(b)."""
        return (self.num_edges * bytes_per_edge
                + self.num_vertices * bytes_per_vertex)

    def __repr__(self) -> str:
        return (f"Graph({self.name!r}, |V|={self.num_vertices}, "
                f"|E|={self.num_edges})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (self.num_vertices == other.num_vertices
                and np.array_equal(self.src, other.src)
                and np.array_equal(self.dst, other.dst)
                and np.array_equal(self.weights, other.weights))

    def __hash__(self) -> int:  # graphs are mutable-free but large; id hash
        return id(self)
