"""Synthetic graph generators.

Used to build scaled-down *twins* of the paper's Table I datasets and the
"synthetic" (uniform) graphs of Fig. 11.  Each generator is deterministic
given a seed.

* :func:`rmat` — Kronecker/R-MAT power-law graphs, the standard stand-in
  for social networks (Orkut, LiveJournal, Twitter, UK-2007).
* :func:`uniform_random` — Erdős–Rényi ``G(n, m)``; the paper's "synthetic
  dataset ... more uniform, due to the random generation of nodes and
  edges" where synchronization skipping shows little benefit.
* :func:`road_network` — sparse grid with unit-ish degree, the twin of the
  WRN road network.
* :func:`star`, :func:`path`, :func:`cycle`, :func:`complete` — small
  fixtures for unit tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .graph import Graph


def rmat(num_vertices: int, num_edges: int, *, a: float = 0.57,
         b: float = 0.19, c: float = 0.19, seed: int = 0,
         weighted: bool = True, name: str = "rmat") -> Graph:
    """R-MAT generator (Chakrabarti et al.): recursive quadrant sampling.

    Produces the skewed, clustered degree distribution of real social/web
    graphs.  ``num_vertices`` is rounded up to the next power of two for
    sampling and then mapped back down by modulo, which preserves skew.
    """
    if num_vertices <= 0:
        raise GraphError("rmat needs at least one vertex")
    if not 0 < a + b + c < 1:
        raise GraphError("rmat requires a+b+c in (0, 1)")
    rng = np.random.default_rng(seed)
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    d = 1.0 - a - b - c
    probs = np.array([a, b, c, d])
    cum = np.cumsum(probs)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        quad = np.searchsorted(cum, r)
        # quadrant bit decomposition: bit0 -> dst half, bit1 -> src half
        src = (src << 1) | (quad >> 1)
        dst = (dst << 1) | (quad & 1)
    src %= num_vertices
    dst %= num_vertices
    weights = (rng.uniform(1.0, 10.0, num_edges) if weighted
               else np.ones(num_edges))
    return Graph.from_edges(num_vertices, src, dst, weights, name=name)


def uniform_random(num_vertices: int, num_edges: int, *, seed: int = 0,
                   weighted: bool = True,
                   name: str = "uniform") -> Graph:
    """Erdős–Rényi ``G(n, m)`` with independently uniform endpoints."""
    if num_vertices <= 0:
        raise GraphError("uniform_random needs at least one vertex")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    weights = (rng.uniform(1.0, 10.0, num_edges) if weighted
               else np.ones(num_edges))
    return Graph.from_edges(num_vertices, src, dst, weights, name=name)


def road_network(rows: int, cols: int, *, seed: int = 0,
                 extra_edge_fraction: float = 0.05,
                 name: str = "road") -> Graph:
    """Grid-shaped road network: |E| ≈ |V|, low max degree, long diameter.

    Mirrors the WRN road network of Table I where |E|/|V| ≈ 1.2.
    Horizontal and vertical links alternate direction per row/column (so
    the graph is strongly connected-ish like real road grids), plus a few
    random "highway" shortcuts.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("road_network needs positive dimensions")
    n = rows * cols
    rng = np.random.default_rng(seed)
    srcs = []
    dsts = []
    for r in range(rows):
        for ccol in range(cols - 1):
            v = r * cols + ccol
            if r % 2 == 0:
                srcs.append(v)
                dsts.append(v + 1)
            else:
                srcs.append(v + 1)
                dsts.append(v)
    for ccol in range(cols):
        for r in range(rows - 1):
            v = r * cols + ccol
            if ccol % 2 == 0:
                srcs.append(v)
                dsts.append(v + cols)
            else:
                srcs.append(v + cols)
                dsts.append(v)
    extra = int(extra_edge_fraction * n)
    if extra:
        srcs.extend(rng.integers(0, n, extra).tolist())
        dsts.extend(rng.integers(0, n, extra).tolist())
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    weights = rng.uniform(1.0, 10.0, src.size)
    return Graph.from_edges(n, src, dst, weights, name=name)


def star(num_leaves: int, name: str = "star") -> Graph:
    """Vertex 0 points at every leaf — worst-case degree skew fixture."""
    if num_leaves < 0:
        raise GraphError("negative leaf count")
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return Graph.from_edges(num_leaves + 1, src, dst, name=name)


def path(num_vertices: int, name: str = "path") -> Graph:
    """A directed path 0 → 1 → ... → n-1."""
    if num_vertices <= 0:
        raise GraphError("path needs at least one vertex")
    src = np.arange(0, num_vertices - 1, dtype=np.int64)
    dst = np.arange(1, num_vertices, dtype=np.int64)
    return Graph.from_edges(num_vertices, src, dst, name=name)


def cycle(num_vertices: int, name: str = "cycle") -> Graph:
    """A directed cycle 0 → 1 → ... → n-1 → 0."""
    if num_vertices <= 0:
        raise GraphError("cycle needs at least one vertex")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = np.roll(src, -1)
    return Graph.from_edges(num_vertices, src, dst, name=name)


def complete(num_vertices: int, name: str = "complete") -> Graph:
    """Complete directed graph without self loops (small fixtures only)."""
    if num_vertices <= 0:
        raise GraphError("complete needs at least one vertex")
    grid_src, grid_dst = np.meshgrid(np.arange(num_vertices),
                                     np.arange(num_vertices))
    mask = grid_src != grid_dst
    return Graph.from_edges(num_vertices, grid_src[mask].ravel(),
                            grid_dst[mask].ravel(), name=name)


def clustered_communities(num_communities: int, community_size: int,
                          intra_edges_per_vertex: int = 8,
                          inter_edge_fraction: float = 0.02, *,
                          seed: int = 0,
                          name: str = "clustered") -> Graph:
    """Dense communities with sparse links between them.

    The paper observes (Fig. 11(b)) that *real* graphs "tend to be more
    clusters of dense partitions, leading to better partitioning results
    that trigger synchronization skipping"; this generator produces that
    regime explicitly so the sync-skipping experiments have a graph whose
    partition-local structure is controllable.
    """
    if num_communities <= 0 or community_size <= 0:
        raise GraphError("need positive community count/size")
    rng = np.random.default_rng(seed)
    n = num_communities * community_size
    intra = num_communities * community_size * intra_edges_per_vertex
    comm_of_edge = np.repeat(np.arange(num_communities),
                             community_size * intra_edges_per_vertex)
    offset = comm_of_edge * community_size
    src = offset + rng.integers(0, community_size, intra)
    dst = offset + rng.integers(0, community_size, intra)
    inter = int(inter_edge_fraction * intra)
    if inter:
        src = np.concatenate([src, rng.integers(0, n, inter)])
        dst = np.concatenate([dst, rng.integers(0, n, inter)])
    weights = rng.uniform(1.0, 10.0, src.size)
    return Graph.from_edges(n, src, dst, weights, name=name)
