"""Breadth-first search on the GX-Plug template (extension algorithm).

Hop counts from a single source: SSSP over the min-plus semiring with unit
edge weights.  Included as one of the "existing distributed graph
algorithms [that] can be transplanted ... with ease".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet


class BFS(AlgorithmTemplate):
    """Level-synchronous BFS from ``source``; value = hop distance."""

    name = "bfs"
    default_max_iterations = 10_000
    monotone = True

    def __init__(self, source: int = 0) -> None:
        self.source = int(source)

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        if not 0 <= self.source < n:
            raise AlgorithmError(f"source {self.source} out of range [0,{n})")
        values = np.full(n, np.inf)
        values[self.source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[self.source] = True
        return AlgorithmState(values, active)

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        return (values[src_ids] + 1.0)[:, None]

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        return src_rows + 1.0

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        merged = np.full((uniq.size, 1), np.inf)
        np.minimum.at(merged, inverse, messages)
        return MessageSet(uniq, merged)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        return self.msg_merge(np.concatenate([a.ids, b.ids]),
                              np.concatenate([a.data, b.data]))

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        better = merged.data[:, 0] < new_values[merged.ids]
        changed = merged.ids[better]
        new_values[changed] = merged.data[better, 0]
        return new_values, changed

    def reference(self, graph: Graph) -> np.ndarray:
        """Single-machine BFS ground truth."""
        n = graph.num_vertices
        values = np.full(n, np.inf)
        values[self.source] = 0.0
        frontier = [self.source]
        depth = 0.0
        while frontier:
            depth += 1.0
            nxt = []
            for v in frontier:
                for u in graph.out_neighbors(v):
                    if values[u] == np.inf:
                        values[u] = depth
                        nxt.append(int(u))
            frontier = nxt
        return values
