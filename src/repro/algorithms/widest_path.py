"""Widest (bottleneck) paths on the GX-Plug template (extension).

Single-source widest path over the max-min semiring: the value of a
vertex is the maximum over all paths from the source of the minimum edge
weight along the path — the classic bottleneck-bandwidth problem of
network routing.  A drop-in demonstration that the template supports
semirings beyond min-plus.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet


class WidestPath(AlgorithmTemplate):
    """Max-min propagation from ``source`` (value = path bottleneck)."""

    name = "widest-path"
    default_max_iterations = 10_000
    monotone = True   # values only increase toward the fixed point

    def __init__(self, source: int = 0) -> None:
        self.source = int(source)

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        if not 0 <= self.source < n:
            raise AlgorithmError(f"source {self.source} out of range "
                                 f"[0, {n})")
        values = np.zeros(n)
        values[self.source] = np.inf   # unlimited bandwidth to itself
        active = np.zeros(n, dtype=bool)
        active[self.source] = True
        return AlgorithmState(values, active)

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        return np.minimum(values[src_ids], weights)[:, None]

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        return np.minimum(src_rows[:, 0], weights)[:, None]

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        best = np.full((uniq.size, 1), -np.inf)
        np.maximum.at(best, inverse, messages)
        return MessageSet(uniq, best)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        return self.msg_merge(np.concatenate([a.ids, b.ids]),
                              np.concatenate([a.data, b.data]))

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        better = merged.data[:, 0] > new_values[merged.ids]
        changed = merged.ids[better]
        new_values[changed] = merged.data[better, 0]
        return new_values, changed

    def reference(self, graph: Graph) -> np.ndarray:
        """Single-machine fixed point of the same max-min relaxation."""
        state = self.init_state(graph)
        values = state.values
        for _ in range(graph.num_vertices + 1):
            msgs = self.msg_gen(graph.src, graph.dst, graph.weights,
                                values)
            merged = self.msg_merge(graph.dst, msgs)
            values, changed = self.msg_apply(values, merged)
            if changed.size == 0:
                break
        return values
