"""PageRank on the GX-Plug template.

Pregel-style push PageRank: each vertex pushes ``rank / out_degree`` along
its out-edges; the new rank is ``(1 - d) + d * sum(incoming)``.  All
vertices stay active every iteration (rank keeps flowing), so the paper
runs PR for a fixed iteration budget — it is the "high operational
intensity" workload of Fig. 14.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet


class PageRank(AlgorithmTemplate):
    """Fixed-iteration push PageRank (damping ``d``, default 0.85)."""

    name = "pagerank"
    default_max_iterations = 10
    # the damped update is a contraction: any seed converges to the
    # unique stationary point, so warm starts survive every mutation
    incremental = "fixpoint"

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-12
                 ) -> None:
        if not 0.0 < damping < 1.0:
            raise AlgorithmError(f"damping must be in (0,1), got {damping}")
        if tolerance < 0:
            raise AlgorithmError(f"negative tolerance {tolerance}")
        self.damping = damping
        self.tolerance = tolerance
        self._inv_outdeg: np.ndarray = np.empty(0)

    # -- lifecycle ------------------------------------------------------------

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        outdeg = graph.out_degrees().astype(np.float64)
        with np.errstate(divide="ignore"):
            inv = np.where(outdeg > 0, 1.0 / np.maximum(outdeg, 1), 0.0)
        self._inv_outdeg = inv
        values = np.ones(n)
        active = np.ones(n, dtype=bool)
        return AlgorithmState(values, active)

    # -- template APIs -----------------------------------------------------------

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        if self._inv_outdeg.size == 0:
            raise AlgorithmError("msg_gen before init_state")
        contrib = values[src_ids] * self._inv_outdeg[src_ids]
        return contrib[:, None]

    def gather_values(self, values: np.ndarray,
                      ids: np.ndarray) -> np.ndarray:
        """Vertex-block row = the ready-to-send contribution rank/deg."""
        if self._inv_outdeg.size == 0:
            raise AlgorithmError("gather_values before init_state")
        return (values[ids] * self._inv_outdeg[ids])[:, None]

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        return src_rows

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        sums = np.zeros((uniq.size, 1))
        np.add.at(sums, inverse, messages)
        return MessageSet(uniq, sums)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        ids = np.concatenate([a.ids, b.ids])
        data = np.concatenate([a.data, b.data])
        return self.msg_merge(ids, data)

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        incoming = np.zeros_like(values)
        if merged.size:
            incoming[merged.ids] = merged.data[:, 0]
        new_values = (1.0 - self.damping) + self.damping * incoming
        delta = np.abs(new_values - values)
        changed = np.nonzero(delta > self.tolerance)[0].astype(np.int64)
        return new_values, changed

    # -- iteration control ---------------------------------------------------------

    def next_active(self, graph: Graph, changed_ids: np.ndarray,
                    num_vertices: int) -> np.ndarray:
        """PR keeps every vertex active (rank flows on all edges)."""
        return np.ones(num_vertices, dtype=bool)

    def is_converged(self, changed_count: int, iteration: int) -> bool:
        return changed_count == 0

    # -- reference --------------------------------------------------------------

    def reference(self, graph: Graph, iterations: int = 10) -> np.ndarray:
        """Single-machine ground truth (same fixed-point map)."""
        state = self.init_state(graph)
        values = state.values
        for _ in range(iterations):
            msgs = self.msg_gen(graph.src, graph.dst, graph.weights, values)
            merged = self.msg_merge(graph.dst, msgs)
            values, changed = self.msg_apply(values, merged)
            if changed.size == 0:
                break
        return values
