"""k-core decomposition on the GX-Plug template (extension algorithm).

Distributed peeling: a vertex whose remaining degree is below ``k`` is
*removed*; each removal sends a decrement event along the vertex's
out-edges; receivers whose degree drops below ``k`` are removed next, and
so on until a fixed point — the surviving vertices form the k-core.

Intended for symmetrized graphs (``graph.to_undirected()``), where the
out-degree equals the undirected degree.

Messages are removal *events* (sent exactly once per removed vertex), so
the algorithm declares :attr:`requires_frontier_scan`; re-scanning the
full edge set each superstep would replay the decrements.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet

_DEG = 0   # value column: remaining degree
_OUT = 1   # value column: 1.0 once the vertex is removed from the core


class KCore(AlgorithmTemplate):
    """Membership in the k-core via distributed peeling."""

    name = "kcore"
    default_max_iterations = 10_000
    # removals are monotone, but the decrement *messages* are counts —
    # not idempotent — so replaying them (as the combined-local-iteration
    # superstep does for vertex-cut replicas) would double-count; stay on
    # the strict per-iteration path
    monotone = False
    requires_frontier_scan = True   # removal events must not replay

    def __init__(self, k: int) -> None:
        if k < 1:
            raise AlgorithmError(f"k must be >= 1, got {k}")
        self.k = int(k)

    # -- lifecycle ------------------------------------------------------------

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        degrees = graph.out_degrees().astype(np.float64)
        removed = (degrees < self.k).astype(np.float64)
        values = np.column_stack([degrees, removed])
        active = removed.astype(bool)   # initially removed vertices peel
        return AlgorithmState(values, active)

    # -- template APIs -----------------------------------------------------------

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        """A removed source decrements each out-neighbour by one."""
        return values[src_ids][:, _OUT][:, None]

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        return src_rows[:, _OUT][:, None]

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        sums = np.zeros((uniq.size, 1))
        np.add.at(sums, inverse, messages)
        return MessageSet(uniq, sums)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        return self.msg_merge(np.concatenate([a.ids, b.ids]),
                              np.concatenate([a.data, b.data]))

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Decrement surviving receivers; flag the ones peeling below k.

        ``changed`` reports every vertex whose row changed (the engine
        persists exactly those rows): decremented survivors plus the
        newly removed.  Already-removed vertices ignore messages, so a
        removal event is emitted exactly once per vertex.
        """
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        ids = merged.ids
        dec = merged.data[:, 0]
        affected_sel = (values[ids, _OUT] == 0.0) & (dec > 0)
        affected = ids[affected_sel]
        new_values[affected, _DEG] -= dec[affected_sel]
        newly_removed = affected[new_values[affected, _DEG] < self.k]
        new_values[newly_removed, _OUT] = 1.0
        return new_values, affected

    def payload_width(self) -> int:
        return 1

    # -- results -------------------------------------------------------------------

    @staticmethod
    def core_members(values: np.ndarray) -> np.ndarray:
        """Vertex ids belonging to the k-core in a finished value table."""
        return np.nonzero(values[:, _OUT] == 0.0)[0]

    # -- reference --------------------------------------------------------------

    def reference(self, graph: Graph) -> np.ndarray:
        """Single-machine peeling ground truth."""
        state = self.init_state(graph)
        values = state.values
        frontier = np.nonzero(values[:, _OUT] == 1.0)[0]
        while frontier.size:
            sel = np.isin(graph.src, frontier)
            msgs = self.msg_gen(graph.src[sel], graph.dst[sel],
                                graph.weights[sel], values)
            merged = self.msg_merge(graph.dst[sel], msgs)
            values, frontier = self.msg_apply(values, merged)
        return values
