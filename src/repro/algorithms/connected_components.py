"""Connected components on the GX-Plug template (extension algorithm).

Min-label propagation: every vertex adopts the smallest label reachable
along edges.  For true (undirected) connected components, run it on
``graph.to_undirected()``; on a directed graph it computes the minimum
ancestor label instead, which is itself a useful primitive.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet


class ConnectedComponents(AlgorithmTemplate):
    """HashMin connected components (labels converge to component minima)."""

    name = "cc"
    default_max_iterations = 10_000
    monotone = True
    incremental = "frontier"

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        values = np.arange(n, dtype=np.float64)
        active = np.ones(n, dtype=bool)
        return AlgorithmState(values, active)

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        return values[src_ids][:, None]

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        return src_rows.copy()

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        merged = np.full((uniq.size, 1), np.inf)
        np.minimum.at(merged, inverse, messages)
        return MessageSet(uniq, merged)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        return self.msg_merge(np.concatenate([a.ids, b.ids]),
                              np.concatenate([a.data, b.data]))

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        better = merged.data[:, 0] < new_values[merged.ids]
        changed = merged.ids[better]
        new_values[changed] = merged.data[better, 0]
        return new_values, changed

    def reference(self, graph: Graph) -> np.ndarray:
        """Single-machine fixed point of the same min-propagation."""
        state = self.init_state(graph)
        values = state.values
        for _ in range(graph.num_vertices + 1):
            msgs = self.msg_gen(graph.src, graph.dst, graph.weights, values)
            merged = self.msg_merge(graph.dst, msgs)
            values, changed = self.msg_apply(values, merged)
            if changed.size == 0:
                break
        return values
