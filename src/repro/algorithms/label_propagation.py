"""Label Propagation (LP) on the GX-Plug template.

Community detection by synchronous label propagation: every vertex adopts
the most frequent label among its in-neighbors (ties broken toward the
smaller label).  The paper "limit[s] the iterations to 15 times to avoid
unlimited computation on specific datasets" (§V-A footnote 4); LP is also
the paper's "fully iterative algorithm, corresponding to a low operational
intensity" in the Fig. 14 discussion.

Message payloads are ``[label, count]`` pairs so partial histograms merge
associatively across blocks, daemons and nodes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet


class LabelPropagation(AlgorithmTemplate):
    """Synchronous LP with per-destination label histograms."""

    name = "lp"
    default_max_iterations = 15

    # -- lifecycle ------------------------------------------------------------

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        values = np.arange(n, dtype=np.float64)  # label = own id initially
        active = np.ones(n, dtype=bool)
        return AlgorithmState(values, active)

    # -- template APIs -----------------------------------------------------------

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Each edge votes its source's label with weight 1."""
        labels = values[src_ids]
        ones = np.ones_like(labels)
        return np.column_stack([labels, ones])

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        labels = src_rows[:, 0]
        return np.column_stack([labels, np.ones_like(labels)])

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        """Aggregate votes into (dst, label) -> count histogram rows."""
        if dst_ids.size == 0:
            return self.empty_messages()
        labels = messages[:, 0]
        counts = messages[:, 1]
        pairs = np.column_stack([dst_ids.astype(np.float64), labels])
        uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
        summed = np.zeros(uniq.shape[0])
        np.add.at(summed, inverse, counts)
        out_ids = uniq[:, 0].astype(np.int64)
        out_data = np.column_stack([uniq[:, 1], summed])
        return MessageSet(out_ids, out_data)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        ids = np.concatenate([a.ids, b.ids])
        data = np.concatenate([a.data, b.data])
        return self.msg_merge(ids, data)

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        ids = merged.ids
        labels = merged.data[:, 0]
        counts = merged.data[:, 1]
        # Within each destination: highest count first, then smallest label.
        order = np.lexsort((labels, -counts, ids))
        sorted_ids = ids[order]
        first = np.ones(sorted_ids.size, dtype=bool)
        first[1:] = sorted_ids[1:] != sorted_ids[:-1]
        winner_ids = sorted_ids[first]
        winner_labels = labels[order][first]
        changed_mask = new_values[winner_ids] != winner_labels
        new_values[winner_ids] = winner_labels
        changed = winner_ids[changed_mask]
        return new_values, changed

    def payload_width(self) -> int:
        return 2

    # -- iteration control ---------------------------------------------------------

    def next_active(self, graph: Graph, changed_ids: np.ndarray,
                    num_vertices: int) -> np.ndarray:
        """LP is fully iterative: every vertex stays active."""
        return np.ones(num_vertices, dtype=bool)

    def is_converged(self, changed_count: int, iteration: int) -> bool:
        return changed_count == 0

    # -- reference --------------------------------------------------------------

    def reference(self, graph: Graph, iterations: int = 15) -> np.ndarray:
        """Single-machine ground truth (same synchronous update)."""
        state = self.init_state(graph)
        values = state.values
        for _ in range(iterations):
            msgs = self.msg_gen(graph.src, graph.dst, graph.weights, values)
            merged = self.msg_merge(graph.dst, msgs)
            values, changed = self.msg_apply(values, merged)
            if changed.size == 0:
                break
        return values
