"""Multi-source Bellman-Ford SSSP on the GX-Plug template.

The paper's SSSP-BF workload "use[s] 4 vertices as source vertices and
calculate[s] their SSSPs simultaneously to make it more compute-intensive"
(§V-A footnote 4).  Vertex values are therefore ``(n, k)`` distance
matrices, one column per source; every edge relaxation updates all k
distances at once.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graph import Graph
from ..core.template import AlgorithmState, AlgorithmTemplate, MessageSet


class MultiSourceSSSP(AlgorithmTemplate):
    """Bellman-Ford from ``sources`` simultaneously (min-plus semiring)."""

    name = "sssp-bf"
    default_max_iterations = 10_000
    monotone = True
    incremental = "frontier"

    def __init__(self, sources: Sequence[int] = (0,)) -> None:
        if not len(sources):
            raise AlgorithmError("SSSP needs at least one source")
        self.sources = [int(s) for s in sources]

    # -- lifecycle ------------------------------------------------------------

    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        n = graph.num_vertices
        for s in self.sources:
            if not 0 <= s < n:
                raise AlgorithmError(f"source {s} out of range [0, {n})")
        values = np.full((n, len(self.sources)), np.inf)
        for col, s in enumerate(self.sources):
            values[s, col] = 0.0
        active = np.zeros(n, dtype=bool)
        active[self.sources] = True
        return AlgorithmState(values, active)

    # -- template APIs -----------------------------------------------------------

    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Relax: candidate distance through each edge, per source."""
        return values[src_ids] + weights[:, None]

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        return src_rows + weights[:, None]

    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        """Min per destination (columnwise)."""
        if dst_ids.size == 0:
            return self.empty_messages()
        uniq, inverse = np.unique(dst_ids, return_inverse=True)
        merged = np.full((uniq.size, messages.shape[1]), np.inf)
        np.minimum.at(merged, inverse, messages)
        return MessageSet(uniq, merged)

    concat_combine = True

    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        if a.size == 0:
            return b
        if b.size == 0:
            return a
        ids = np.concatenate([a.ids, b.ids])
        data = np.concatenate([a.data, b.data])
        return self.msg_merge(ids, data)

    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        if merged.size == 0:
            return new_values, np.empty(0, dtype=np.int64)
        old_rows = new_values[merged.ids]
        improved = merged.data < old_rows
        new_values[merged.ids] = np.where(improved, merged.data, old_rows)
        changed = merged.ids[improved.any(axis=1)]
        return new_values, changed

    def payload_width(self) -> int:
        return len(self.sources)

    # -- reference --------------------------------------------------------------

    def reference(self, graph: Graph) -> np.ndarray:
        """Single-machine Bellman-Ford ground truth for testing."""
        state = self.init_state(graph)
        values = state.values
        for _ in range(graph.num_vertices + 1):
            cand = values[graph.src] + graph.weights[:, None]
            merged = self.msg_merge(graph.dst, cand)
            values, changed = self.msg_apply(values, merged)
            if changed.size == 0:
                break
        return values
