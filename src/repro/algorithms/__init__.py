"""Graph algorithms implemented on the GX-Plug algorithm template.

The paper's evaluation workloads — multi-source Bellman-Ford SSSP,
PageRank and Label Propagation — plus two extension algorithms (BFS and
connected components) demonstrating that "existing distributed graph
algorithms can be transplanted ... with ease".
"""

from .sssp import MultiSourceSSSP
from .pagerank import PageRank
from .label_propagation import LabelPropagation
from .bfs import BFS
from .connected_components import ConnectedComponents
from .kcore import KCore
from .widest_path import WidestPath


def paper_workloads():
    """The three workloads of §V-A, paper-default parameters.

    SSSP-BF uses 4 simultaneous sources; LP is capped at 15 iterations
    (via its ``default_max_iterations``).
    """
    return {
        "sssp-bf": MultiSourceSSSP(sources=(0, 1, 2, 3)),
        "pagerank": PageRank(),
        "lp": LabelPropagation(),
    }


__all__ = [
    "MultiSourceSSSP",
    "PageRank",
    "LabelPropagation",
    "BFS",
    "ConnectedComponents",
    "KCore",
    "WidestPath",
    "paper_workloads",
]
