"""Synchronization skipping (§III-B3).

A global synchronization can be skipped when there are "no de facto
conflicts among distributed nodes" — no node produced an update that
another node needs.  With edges placed on their source's master node,
this reduces to: **every message this iteration targets a vertex mastered
on the node that generated it**.  When that holds for all nodes, each
agent applies its own partial messages locally and the next iteration
starts without touching the upper system's synchronization machinery.

:class:`SkipDetector` also exposes the paper's stated per-vertex check —
"each updated vertex and its outer edges are in the same node" — as
:meth:`updates_are_local`, used to decide whether the *next* iteration can
again proceed from purely local data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..graph.partition import PartitionedGraph
from .template import MessageSet


@dataclass
class SkipStats:
    """Bookkeeping for the Fig. 11(b) experiment."""

    total_iterations: int = 0
    skipped_iterations: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.total_iterations == 0:
            return 0.0
        return self.skipped_iterations / self.total_iterations


class SkipDetector:
    """Decides, per iteration, whether the global sync can be skipped."""

    def __init__(self, pgraph: PartitionedGraph) -> None:
        self._master_of = pgraph.master_of
        self._out_local = pgraph.out_local_mask()
        self.stats = SkipStats()

    def messages_are_local(self, partials_by_node: Dict[int, MessageSet]
                           ) -> bool:
        """True iff every partial message set targets its own node's
        masters (no inter-node data transfer required)."""
        for node_id, partial in partials_by_node.items():
            if partial.size == 0:
                continue
            if np.any(self._master_of[partial.ids] != node_id):
                return False
        return True

    def updates_are_local(self, changed_by_node: Dict[int, np.ndarray]
                          ) -> bool:
        """The paper's check: every updated vertex's out-edges are local.

        Guarantees the *next* iteration's message generation needs no
        foreign vertex values.
        """
        for node_id, changed in changed_by_node.items():
            if changed.size == 0:
                continue
            if np.any(self._master_of[changed] != node_id):
                return False
            if not np.all(self._out_local[changed]):
                return False
        return True

    def can_skip(self, partials_by_node: Dict[int, MessageSet],
                 changed_by_node: Dict[int, np.ndarray]) -> bool:
        """Record and return the skip decision for one iteration.

        Skipping is sound only when both conditions hold: this iteration's
        messages never crossed nodes (so local application is complete)
        and the resulting updates stay local (so the next iteration can
        start from node-local data).
        """
        skippable = (self.messages_are_local(partials_by_node)
                     and self.updates_are_local(changed_by_node))
        self.stats.total_iterations += 1
        if skippable:
            self.stats.skipped_iterations += 1
        return skippable
