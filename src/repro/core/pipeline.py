"""Pipeline-shuffle cost model and optimal block size (§III-A).

The 3-stage pipeline (Download / Compute / Upload) over ``s`` equal blocks
of size ``b = d/s`` has the makespan of the paper's Equation 1::

    T_total = T_n(b) + max(T_n, T_c)
            + (s - 2) * max(T_n, T_c, T_u)
            + max(T_c, T_u) + T_u

with stage times ``T_n = k1 b``, ``T_c = a + k2 b``, ``T_u = k3 b``
(Eq. 2).  :func:`lemma1_optimal` is the paper's closed-form optimum;
:func:`choose_block_size` is the production selector that also handles the
integer constraint the paper notes ("both s and b must be integers") by
evaluating Eq. 1 at the rounded candidates.

:func:`pipeline_makespan_from_stage_times` computes the makespan of the
rotation-synchronized pipeline for *arbitrary* per-block stage durations;
the unit tests verify it coincides with Eq. 1 for uniform blocks, and the
daemon-agent mechanism (Algorithms 1-2 on the simulated scheduler) is in
turn validated against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import MiddlewareError


@dataclass(frozen=True)
class PipelineCoefficients:
    """The (k1, k2, k3, a) of Eq. 2.

    k1 — download ms per entity (Thread.Download)
    k2 — compute + device-copy ms per entity (Thread.Compute slope)
    k3 — upload ms per entity (Thread.Upload)
    a  — fixed device call overhead per block (T_call)
    """

    k1: float
    k2: float
    k3: float
    a: float

    def __post_init__(self) -> None:
        if min(self.k1, self.k2, self.k3) <= 0:
            raise MiddlewareError("k1, k2, k3 must be positive")
        if self.a < 0:
            raise MiddlewareError("call overhead a must be >= 0")

    # -- stage times -----------------------------------------------------------

    def t_n(self, b: float) -> float:
        return self.k1 * b

    def t_c(self, b: float) -> float:
        return self.a + self.k2 * b

    def t_u(self, b: float) -> float:
        return self.k3 * b

    # -- Equation 1 ---------------------------------------------------------------

    def total_time(self, d: int, s: int) -> float:
        """Pipeline makespan for ``d`` entities in ``s`` equal blocks.

        Uses real-valued ``b = d/s`` exactly as the paper's analysis does.
        ``s == 1`` degenerates to the unpipelined sum of the three stages.
        """
        if d < 0:
            raise MiddlewareError(f"negative entity count {d}")
        if s < 1:
            raise MiddlewareError(f"need >=1 blocks, got {s}")
        if d == 0:
            return 0.0
        b = d / s
        tn, tc, tu = self.t_n(b), self.t_c(b), self.t_u(b)
        if s == 1:
            return tn + tc + tu
        return (tn + max(tn, tc)
                + (s - 2) * max(tn, tc, tu)
                + max(tc, tu) + tu)

    def sequential_time(self, d: int, s: int) -> float:
        """The 5-step tightly coupled flow (no pipeline, Fig. 10 baseline).

        Every block passes download -> compute -> upload with no overlap,
        so the makespan is simply the sum of all stage times.
        """
        if d < 0:
            raise MiddlewareError(f"negative entity count {d}")
        if s < 1:
            raise MiddlewareError(f"need >=1 blocks, got {s}")
        if d == 0:
            return 0.0
        b = d / s
        return s * (self.t_n(b) + self.t_c(b) + self.t_u(b))

    # -- Lemma 1 --------------------------------------------------------------------

    def lemma1_optimal(self, d: int) -> Tuple[float, float]:
        """The paper's closed-form ``(b_opt, T_total_min)`` (Lemma 1).

        Continuous analysis: ignores the integrality of s and b.
        """
        if d <= 0:
            raise MiddlewareError(f"need d > 0, got {d}")
        k1, k2, k3, a = self.k1, self.k2, self.k3, self.a
        q = math.sqrt(a * d / (k1 + k3)) if a > 0 else 0.0
        k_max = max(k1, k2, k3)
        if a == 0:
            # no fixed call cost: nothing penalizes small blocks, so the
            # balanced point degenerates to b -> 0; report b = 1.
            return 1.0, self.total_time(d, d)
        if k1 == k_max and k1 > k2:
            b_corner = a / (k1 - k2)
            if b_corner < q:
                t = k1 * d + (k1 + k3) * a / (k1 - k2)
                return b_corner, t
        if k3 == k_max and k3 > k2:
            b_corner = a / (k3 - k2)
            if b_corner < q:
                t = k3 * d + (k1 + k3) * a / (k3 - k2)
                return b_corner, t
        t = k2 * d + 2.0 * math.sqrt((k1 + k3) * a * d)
        return q, t

    def choose_num_blocks(self, d: int) -> int:
        """Integer block count minimizing Eq. 1 (the "Pipeline*" setting).

        Evaluates Eq. 1 at the floor/ceil of the Lemma-1 ``s_opt`` (and a
        small neighbourhood, since the max() kinks make the discrete curve
        only piecewise unimodal) plus the corners s=1 and s=d.
        """
        if d <= 0:
            raise MiddlewareError(f"need d > 0, got {d}")
        b_opt, _ = self.lemma1_optimal(d)
        candidates = {1, d}
        if b_opt >= 1e-12:
            s_opt = d / b_opt
            base = {math.floor(s_opt), math.ceil(s_opt),
                    math.floor(d / max(math.floor(b_opt), 1)),
                    math.floor(d / max(math.ceil(b_opt), 1))}
            for s in base:
                for ds in range(-2, 3):
                    candidates.add(s + ds)
        best_s, best_t = 1, float("inf")
        for s in sorted(c for c in candidates if 1 <= c <= d):
            t = self.total_time(d, s)
            if t < best_t - 1e-12:
                best_s, best_t = s, t
        return best_s

    def choose_block_size(self, d: int) -> int:
        """Integer block size b = ceil(d / s_opt) for the optimal s."""
        s = self.choose_num_blocks(d)
        return max(1, math.ceil(d / s))

    def brute_force_best(self, d: int, max_s: int = 10_000
                         ) -> Tuple[int, float]:
        """Exhaustive integer search over s (tests / small d only)."""
        if d <= 0:
            raise MiddlewareError(f"need d > 0, got {d}")
        best_s, best_t = 1, float("inf")
        for s in range(1, min(d, max_s) + 1):
            t = self.total_time(d, s)
            if t < best_t - 1e-12:
                best_s, best_t = s, t
        return best_s, best_t


def pipeline_makespan_from_stage_times(
        times_n: Sequence[float], times_c: Sequence[float],
        times_u: Sequence[float]) -> float:
    """Makespan of the rotation-synchronized 3-stage pipeline.

    Blocks advance in lockstep: a rotation happens when *all three*
    threads have finished their current block (the ExchangeFinished /
    RotateFinished handshake of Algorithms 1-2).  Stage ``i`` of the
    pipeline runs block ``i`` while stage two runs block ``i-1`` and stage
    three runs block ``i-2``; the cycle time is the max of the three
    active stage durations.
    """
    s = len(times_n)
    if len(times_c) != s or len(times_u) != s:
        raise MiddlewareError("stage time sequences must have equal length")
    if s == 0:
        return 0.0
    total = 0.0
    # cycles run from 0 to s+1 inclusive; in cycle t the downloader works
    # on block t, the computer on block t-1, the uploader on block t-2.
    for cycle in range(s + 2):
        dur = 0.0
        if cycle < s:
            dur = max(dur, times_n[cycle])
        if 0 <= cycle - 1 < s:
            dur = max(dur, times_c[cycle - 1])
        if 0 <= cycle - 2 < s:
            dur = max(dur, times_u[cycle - 2])
        total += dur
    return total


def coefficients_for(download_ms_per_entity: float,
                     device_call_ms: float,
                     device_ms_per_entity: float,
                     upload_ms_per_entity: float) -> PipelineCoefficients:
    """Assemble Eq. 2 coefficients from a host runtime and a device model."""
    return PipelineCoefficients(
        k1=download_ms_per_entity,
        k2=device_ms_per_entity,
        k3=upload_ms_per_entity,
        a=device_call_ms,
    )


#: The measured coefficient sets of the paper's Fig. 15 experiment
#: (footnote 6) — used verbatim by the Fig. 15 bench.
PAPER_FIG15_COEFFICIENTS = {
    "sssp-bf": PipelineCoefficients(k1=0.03, k2=0.51, k3=0.09, a=84671.0),
    "pagerank": PipelineCoefficients(k1=0.02, k2=0.58, k3=0.1, a=1970.0),
    "lp": PipelineCoefficients(k1=0.003, k2=0.59, k3=0.006, a=498.0),
}
