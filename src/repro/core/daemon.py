"""The daemon: accelerator wrapper with runtime/iteration control (§II-A1).

A daemon represents one accelerator.  It holds the algorithm template, a
System V shared memory segment (identified by its unique key) containing
the rotating n/c/u block areas, and the two control channels to its agent.
Its iteration behaviour is the paper's Algorithm 1: on ``ExchangeFinished``
rotate the areas and acknowledge with ``RotateFinished``; compute the
c-area block on the device and report ``ComputeFinished``; when the c-area
is empty after a rotation the iteration's blocks are exhausted and the
daemon reports ``ComputeAllFinished``.

Runtime isolation (§IV-C): the daemon process outlives upper-system calls,
so the device initializes exactly once.  With isolation disabled
(``MiddlewareConfig.runtime_isolation=False``) the device context is torn
down after every request and re-initialization is charged each time — the
"direct GPU call" baseline of Fig. 13.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

import numpy as np

from ..accel.device import Accelerator
from ..errors import ProtocolError, ShmError
from ..ipc import Channel, Now, Recv, Send, Sleep
from ..ipc.shm import ShmRegistry
from .blocks import AreaSet, TripletBlock
from .config import MiddlewareConfig
from .template import AlgorithmTemplate, MessageSet

# Control message vocabulary of Algorithms 1-2.
MSG_EXCHANGE_FINISHED = "ExchangeFinished"
MSG_ROTATE_FINISHED = "RotateFinished"
MSG_COMPUTE_FINISHED = "ComputeFinished"
MSG_COMPUTE_ALL_FINISHED = "ComputeAllFinished"

#: Base System V key space for daemon segments (arbitrary, SysV-style hex).
DAEMON_KEY_BASE = 0x47580000

#: Accounting categories for the Fig. 14 middleware cost ratio.
CAT_COMPUTE = "middleware.compute"
CAT_DOWNLOAD = "middleware.download"
CAT_UPLOAD = "middleware.upload"
CAT_INIT = "middleware.init"

#: Simulated time burned by an injected daemon hang (fault subsystem).
CAT_HANG = "fault.hang"


class Daemon:
    """One accelerator's daemon: template holder + iteration control."""

    def __init__(self, daemon_id: int, accelerator: Accelerator,
                 registry: ShmRegistry, config: MiddlewareConfig) -> None:
        self.daemon_id = daemon_id
        self.accelerator = accelerator
        self.registry = registry
        self.config = config
        # the daemon's unique System V key and shared segment (§II-B)
        self.key = DAEMON_KEY_BASE + daemon_id
        self.segment = registry.shmget(self.key).attach(f"daemon-{daemon_id}")
        self.areas = AreaSet()
        self.segment.put("areas", self.areas)
        # control channels (message exchange, not data: data lives in shm)
        self.to_daemon = Channel(f"agent->daemon{daemon_id}")
        self.to_agent = Channel(f"daemon{daemon_id}->agent")
        self.blocks_computed = 0
        # fault subsystem state: the pair's heartbeat monitor for the
        # current pass, plus armed-but-unfired injected faults
        self.heartbeat = None
        self.pending_hang_ms: Optional[float] = None
        self.pending_crashes = 0
        self.crash_after_kernels = 0
        self.respawns = 0
        # gray-failure state (repro.fault.straggler): armed slowdowns
        # inflate *simulated durations only* — computed values are
        # untouched, which is what keeps faulted runs bit-identical.
        self.straggler = None
        self.slow_factor = 1.0
        self.slow_passes_left = 0
        self.slow_passes_done = 0
        self.slow_flaky = False
        self.transfer_slow_factor = 1.0
        self.transfer_slow_passes_left = 0
        #: did this daemon finish (or never get) work this pass?  Set by
        #: the agent; speculation picks its backup among idle daemons.
        self.pass_idle = False

    def reset_protocol(self) -> None:
        """Recover from a mid-pass failure: drop in-flight blocks and
        control messages so the next pass starts from a clean protocol
        state (the device context is re-established separately)."""
        for area in self.areas.areas():
            area.clear()
        self.to_daemon = Channel(f"agent->daemon{self.daemon_id}")
        self.to_agent = Channel(f"daemon{self.daemon_id}->agent")

    # -- gray failures (repro.fault.straggler) ------------------------------

    def arm_slowdown(self, factor: float, passes: int,
                     flaky: bool = False) -> None:
        """Inflate this daemon's compute durations by ``factor`` for the
        next ``passes`` edge passes (``flaky`` applies it every other
        pass only).  The daemon stays alive and keeps heartbeating — a
        gray failure, invisible to the binary fault machinery."""
        self.slow_factor = float(factor)
        self.slow_passes_left = int(passes)
        self.slow_passes_done = 0
        self.slow_flaky = bool(flaky)

    def arm_transfer_slowdown(self, factor: float, passes: int) -> None:
        """Inflate the pair's download/upload costs instead (shm/PCIe
        pressure rather than a throttled device)."""
        self.transfer_slow_factor = float(factor)
        self.transfer_slow_passes_left = int(passes)

    @property
    def compute_inflation(self) -> float:
        """Current compute-duration multiplier (1.0 when healthy)."""
        if self.slow_passes_left <= 0:
            return 1.0
        if self.slow_flaky and self.slow_passes_done % 2 == 1:
            return 1.0
        return self.slow_factor

    @property
    def transfer_inflation(self) -> float:
        """Current transfer-cost multiplier (1.0 when healthy)."""
        if self.transfer_slow_passes_left <= 0:
            return 1.0
        return self.transfer_slow_factor

    def note_pass_end(self) -> None:
        """One edge pass completed; tick down armed gray windows."""
        if self.slow_passes_left > 0:
            self.slow_passes_left -= 1
            self.slow_passes_done += 1
        if self.transfer_slow_passes_left > 0:
            self.transfer_slow_passes_left -= 1

    def verify_segment(self) -> None:
        """Integrity-check the daemon's shared memory before a pass.

        Raises :class:`~repro.errors.ShmCorruption`; the agent's recovery
        loop answers by respawning the daemon (segment rebuilt).
        """
        self.segment.verify()

    def respawn(self) -> None:
        """Full daemon restart after an unrecoverable-in-place fault.

        The old process's System V segment dies with it; a fresh segment
        is re-created and re-attached through the registry, the block
        areas and control channels are rebuilt, and the device context is
        released so the next pass pays re-initialization.  A recurring
        crash plan re-arms itself here (that is what lets a fault plan
        exhaust the retry budget deterministically).
        """
        self.respawns += 1
        self.accelerator.shutdown()
        try:
            self.registry.shmrm(self.key)
        except ShmError:  # pragma: no cover - segment already gone
            pass
        self.segment = self.registry.shmget(self.key).attach(
            f"daemon-{self.daemon_id}")
        self.areas = AreaSet()
        self.segment.put("areas", self.areas)
        self.to_daemon = Channel(f"agent->daemon{self.daemon_id}")
        self.to_agent = Channel(f"daemon{self.daemon_id}->agent")
        self.pending_hang_ms = None
        if self.pending_crashes > 0:
            self.pending_crashes -= 1
            self.accelerator.inject_failure(self.crash_after_kernels)

    # -- device lifecycle --------------------------------------------------------

    def init_cost_ms(self) -> float:
        """Charge for making the device ready for the next request.

        Zero when runtime isolation keeps the initialized context alive.
        """
        if self.accelerator.initialized and self.config.runtime_isolation:
            return 0.0
        return self.accelerator.init()

    def release_after_request(self) -> None:
        """Without isolation the device context dies with the call."""
        if not self.config.runtime_isolation:
            self.accelerator.shutdown()

    # -- kernels --------------------------------------------------------------------

    def compute_block(self, algorithm: AlgorithmTemplate,
                      block: TripletBlock) -> Tuple[MessageSet, float]:
        """MSGGen + block-local MSGMerge on the device.

        Returns the block's partial message set and the simulated device
        time (T_call + per-entity compute/copy, Eq. 2).
        """
        def kernel() -> MessageSet:
            msgs = algorithm.msg_gen_local(block.src_values, block.weights)
            return algorithm.msg_merge(block.dst_ids, msgs)

        result, duration = self.accelerator.run(
            kernel, entities=block.num_entities)
        self.blocks_computed += 1
        expected = duration
        inflation = self.compute_inflation
        if inflation != 1.0:
            duration *= inflation
        if self.straggler is not None and block.num_entities:
            self.straggler.observe(self.daemon_id, "compute",
                                   block.num_entities, duration, expected)
        return result, duration

    def apply_messages(self, algorithm: AlgorithmTemplate,
                       values: np.ndarray, merged: MessageSet
                       ) -> Tuple[np.ndarray, np.ndarray, float]:
        """MSGApply on the device: fold merged messages into vertex values.

        Returns ``(new_values, changed_ids, simulated_ms)``.
        """
        def kernel():
            return algorithm.msg_apply(values, merged)

        (new_values, changed), duration = self.accelerator.run(
            kernel, entities=merged.size)
        return new_values, changed, duration * self.compute_inflation

    def scatter_cost_ms(self, affected_edges: int) -> float:
        """Device time of a GAS scatter pass over ``affected_edges``."""
        return self.accelerator.kernel_ms(affected_edges)

    # -- Algorithm 1 ------------------------------------------------------------------

    def iteration_process(self, algorithm: AlgorithmTemplate
                          ) -> Generator:
        """The daemon side of one pipelined iteration (paper Algorithm 1).

        Runs as a simulated process.  After each rotation the daemon
        immediately computes the c-area block (the paper's pseudocode
        leaves the compute trigger implicit; computing right after
        ``RotateFinished`` is the only schedule that terminates and it
        yields exactly the Eq. 1 makespan).
        """
        while True:
            msg = yield Recv(self.to_daemon)
            if self.heartbeat is not None:
                now = yield Now()
                self.heartbeat.beat(self.daemon_id, now)
            if msg == MSG_EXCHANGE_FINISHED:
                self.areas.rotate()
                yield Send(self.to_agent, MSG_ROTATE_FINISHED)
                if self.pending_hang_ms is not None:
                    # injected hang: the daemon goes silent without a
                    # busy lease, so the watchdog sees missed heartbeats
                    hang_ms, self.pending_hang_ms = self.pending_hang_ms, None
                    yield Sleep(hang_ms, CAT_HANG)
                area = self.areas.c
                if area.block is not None:
                    block = area.block
                    result, duration = self.compute_block(algorithm, block)
                    if self.heartbeat is not None:
                        # legitimate silence: lease the kernel's duration
                        now = yield Now()
                        self.heartbeat.beat(self.daemon_id, now,
                                            busy_until=now + duration,
                                            phase="compute")
                    yield Sleep(duration, CAT_COMPUTE)
                    # result replaces the block in situ (*c <- com_dev.data)
                    area.block = None
                    area.result = result
                    yield Send(self.to_agent, MSG_COMPUTE_FINISHED)
                else:
                    yield Send(self.to_agent, MSG_COMPUTE_ALL_FINISHED)
                    return
            else:
                raise ProtocolError(
                    f"daemon {self.daemon_id}: unexpected message {msg!r}"
                )
