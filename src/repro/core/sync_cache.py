"""Synchronization caching: LRU-weighted vertex cache + lazy upload (§III-B2).

The agent keeps a temporary vertex table so that vertices repeatedly
involved in computation are not re-downloaded from the upper system every
iteration.  Entries carry a *weight* that rises when used and decays with
the passage of iterations; when the cache is full, the stalest (lowest
weight, i.e. least recently used) entry is evicted.

.. note::
   The paper's prose says the agent "evicts the vertex with the highest
   weight" in one sentence and "chooses vertices with the lowest weights"
   for replacement in the next; since weights *increase* on use, evicting
   the highest-weight (most recently used) entry would defeat the cache.
   We implement the only internally consistent reading — evict the lowest
   weight — and note the discrepancy in DESIGN.md.

The cache is slot-based: a preallocated ``(capacity, width)`` value
matrix, flat per-slot id/weight/dirty arrays, and a dense ``id -> slot``
lookup array.  Whole id arrays move through :meth:`lookup_many` /
:meth:`insert_many` / :meth:`touch` / :meth:`take_dirty` with fancy
indexing — the per-vertex methods (``lookup``/``insert``/``update``)
remain and keep their exact historical semantics.

Lazy uploading (Algorithm 3) is driven by two queues: each agent pushes
the vertex ids it will need next iteration to the **global query queue**;
the union is broadcast, and each agent uploads to the **global data
queue** only its updated vertices that some other agent queried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import MiddlewareError

#: Starting size of the dense ``id -> slot`` index; grows geometrically
#: to cover the largest vertex id seen.
_INDEX_SEED = 1024


class LRUVertexCache:
    """Weight-decayed LRU cache of vertex attribute rows.

    Weights follow the paper's scheme: new/used entries get the current
    generation stamp (so weight effectively "decreases with the passage of
    iterations" relative to fresh entries and "increases if being used").
    Eviction takes the lowest ``(weight, vertex_id)`` among *clean*
    entries; dirty entries are pinned by the lazy-upload contract.
    """

    def __init__(self, capacity: int, writeback: bool = False) -> None:
        if capacity < 1:
            raise MiddlewareError(f"cache capacity must be >= 1, got "
                                  f"{capacity}")
        self.capacity = capacity
        #: with write-back, a cache full of dirty entries evicts the
        #: stalest dirty row (its update counts as eagerly uploaded)
        #: instead of raising; clean entries always evict first.
        self.writeback = writeback
        # slot-major state; the value matrix is allocated lazily once the
        # first row reveals the attribute width and dtype.
        self._values: Optional[np.ndarray] = None  # (capacity, width)
        self._ids = np.full(capacity, -1, dtype=np.int64)  # slot -> id
        self._weights = np.zeros(capacity, dtype=np.float64)
        self._dirty = np.zeros(capacity, dtype=bool)
        self._index = np.full(_INDEX_SEED, -1, dtype=np.int64)  # id -> slot
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._size = 0
        self._generation = 0.0
        # instrumentation
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- iteration lifecycle ---------------------------------------------------

    def tick(self) -> None:
        """Advance one iteration: every resident weight ages by one."""
        self._generation += 1.0

    # -- lookups ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, vertex: int) -> bool:
        return self._slot(int(vertex)) >= 0

    def _slot(self, vertex: int) -> int:
        if 0 <= vertex < self._index.size:
            return int(self._index[vertex])
        return -1

    def lookup(self, vertex: int) -> Optional[np.ndarray]:
        """Value for ``vertex`` or None on miss; a hit bumps its weight."""
        slot = self._slot(int(vertex))
        if slot < 0:
            self.misses += 1
            return None
        self.hits += 1
        self._weights[slot] = self._generation
        return self._values[slot].copy()

    def contains_many(self, ids: np.ndarray) -> np.ndarray:
        """Boolean residency mask for an id array (no weight bumps)."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        mask = np.zeros(ids.size, dtype=bool)
        in_range = (ids >= 0) & (ids < self._index.size)
        mask[in_range] = self._index[ids[in_range]] >= 0
        return mask

    def lookup_many(self, ids: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bulk lookup: ``(hit_mask, rows)`` for an id array.

        ``rows`` holds one value row per hit (aligned with
        ``ids[hit_mask]``); hits bump weights, misses count as misses.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        mask = self.contains_many(ids)
        slots = self._index[ids[mask]]
        self._weights[slots] = self._generation
        self.hits += int(slots.size)
        self.misses += int(ids.size - slots.size)
        if self._values is None:
            return mask, np.empty((0, 0))
        return mask, self._values[slots]

    def partition_ids(self, ids: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``ids`` into (cached, missing) without bumping weights.

        Used by the agent when costing a download batch; call
        :meth:`touch` afterwards for the ids actually used.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        mask = self.contains_many(ids)
        return ids[mask], ids[~mask]

    def touch(self, ids: np.ndarray) -> None:
        """Bump weights of cached ids (counted as hits)."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return
        in_range = (ids >= 0) & (ids < self._index.size)
        slots = self._index[ids[in_range]]
        slots = slots[slots >= 0]
        self._weights[slots] = self._generation
        self.hits += int(slots.size)

    # -- inserts / updates ------------------------------------------------------------

    def insert(self, vertex: int, value: np.ndarray) -> Optional[int]:
        """Cache a freshly downloaded vertex (counted as a miss upstream).

        Returns the evicted vertex id if the insert displaced an entry,
        else None.
        """
        return self._put_one(int(vertex), value, mark_dirty=False)

    def update(self, vertex: int, value: np.ndarray,
               dirty: bool = True) -> Optional[int]:
        """Write a computed result into the cache (lazy upload holds it).

        Returns the evicted vertex id if the update displaced an entry.
        """
        return self._put_one(int(vertex), value, mark_dirty=bool(dirty))

    def insert_many(self, ids: np.ndarray, rows: np.ndarray,
                    dirty: bool = False) -> np.ndarray:
        """Bulk insert/update: scatter ``rows`` to ``ids`` in one shot.

        Returns the evicted vertex ids.  Entries already resident are
        updated in place; new entries claim free slots, evicting the
        stalest clean pre-batch entries when the cache is full (batch
        members never evict each other — when a batch outsizes what the
        pre-batch state can absorb, the exact sequential semantics run
        instead).  ``dirty=True`` marks every written row dirty;
        ``dirty=False`` leaves existing dirty flags alone (refresh
        semantics, matching ``update(..., dirty=False)``).
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        rows = self._ensure_store(rows)
        if rows.shape[0] != ids.size:
            raise MiddlewareError(
                f"insert_many: {ids.size} ids vs {rows.shape[0]} rows")
        if ids.size > 1:
            uniq, rev_first = np.unique(ids[::-1], return_index=True)
            if uniq.size != ids.size:
                # duplicate ids: keep the last occurrence (the sequential
                # overwrite result)
                keep = ids.size - 1 - rev_first
                ids, rows = ids[keep], rows[keep]
        if bool((ids < 0).any()):
            raise MiddlewareError("vertex ids must be >= 0")
        self._ensure_index(int(ids.max()))
        slots = self._index[ids]
        present = slots >= 0
        n_new = int(ids.size - int(present.sum()))
        evicted = np.empty(0, dtype=np.int64)
        if n_new > len(self._free):
            need = n_new - len(self._free)
            occ = self._ids >= 0
            excl = np.zeros(self.capacity, dtype=bool)
            excl[slots[present]] = True  # in-place targets are off-limits
            clean = np.flatnonzero(occ & ~self._dirty & ~excl)
            pinned = np.flatnonzero(occ & self._dirty & ~excl)
            avail = clean.size + (pinned.size if self.writeback else 0)
            if avail < need:
                # batch outsizes the evictable pre-batch state: replay
                # the exact one-at-a-time semantics (thrash, or the
                # historical full-of-dirty error).
                return self._insert_seq(ids, rows, dirty)
            victims = self._pick_stalest(clean, min(need, clean.size))
            if victims.size < need:
                extra = self._pick_stalest(pinned, need - victims.size)
                self.writebacks += int(extra.size)
                victims = np.concatenate([victims, extra])
            evicted = self._ids[victims].copy()
            self._drop_slots(victims)
            self.evictions += int(victims.size)
        pslots = slots[present]
        self._values[pslots] = rows[present]
        self._weights[pslots] = self._generation
        if dirty:
            self._dirty[pslots] = True
        if n_new:
            nslots = np.asarray(self._free[-n_new:][::-1], dtype=np.int64)
            del self._free[-n_new:]
            new_ids = ids[~present]
            self._index[new_ids] = nslots
            self._ids[nslots] = new_ids
            self._values[nslots] = rows[~present]
            self._weights[nslots] = self._generation
            self._dirty[nslots] = bool(dirty)
            self._size += n_new
        return evicted

    def invalidate(self, vertex: int) -> None:
        """Drop an entry made stale by a foreign update (no eviction stat)."""
        slot = self._slot(int(vertex))
        if slot >= 0:
            self._drop_slots(np.array([slot], dtype=np.int64))

    def invalidate_many(self, ids: np.ndarray) -> int:
        """Bulk :meth:`invalidate`; returns how many entries dropped."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        in_range = (ids >= 0) & (ids < self._index.size)
        slots = self._index[ids[in_range]]
        slots = np.unique(slots[slots >= 0])
        if slots.size:
            self._drop_slots(slots)
        return int(slots.size)

    # -- internals ---------------------------------------------------------------

    def _ensure_index(self, max_id: int) -> None:
        if max_id < self._index.size:
            return
        size = self._index.size
        while size <= max_id:
            size *= 2
        grown = np.full(size, -1, dtype=np.int64)
        grown[: self._index.size] = self._index
        self._index = grown

    def _ensure_store(self, rows: np.ndarray) -> np.ndarray:
        """(Re)allocate the value matrix for ``rows``; returns rows 2-D."""
        rows = np.atleast_2d(np.asarray(rows))
        if self._values is None:
            self._values = np.zeros((self.capacity, rows.shape[1]),
                                    dtype=rows.dtype)
        elif rows.shape[1] != self._values.shape[1]:
            raise MiddlewareError(
                f"cache row width changed: {self._values.shape[1]} -> "
                f"{rows.shape[1]}")
        else:
            dtype = np.result_type(self._values.dtype, rows.dtype)
            if dtype != self._values.dtype:
                self._values = self._values.astype(dtype)
        return rows

    def _put_one(self, vertex: int, value: np.ndarray,
                 mark_dirty: bool) -> Optional[int]:
        if vertex < 0:
            raise MiddlewareError(f"vertex ids must be >= 0, got {vertex}")
        rows = self._ensure_store(value)
        self._ensure_index(vertex)
        slot = int(self._index[vertex])
        evicted = None
        if slot < 0:
            if self._size >= self.capacity:
                evicted = self._evict_one()
            slot = self._free.pop()
            self._index[vertex] = slot
            self._ids[slot] = vertex
            self._size += 1
        self._values[slot] = rows[0]
        self._weights[slot] = self._generation
        if mark_dirty:
            self._dirty[slot] = True
        return evicted

    def _insert_seq(self, ids: np.ndarray, rows: np.ndarray,
                    dirty: bool) -> np.ndarray:
        evicted = [self._put_one(int(v), row, mark_dirty=bool(dirty))
                   for v, row in zip(ids, rows)]
        return np.asarray([e for e in evicted if e is not None],
                          dtype=np.int64)

    def _pick_stalest(self, slots: np.ndarray, k: int) -> np.ndarray:
        """The ``k`` slots with the smallest ``(weight, id)`` among
        ``slots`` (the batch form of the eviction order)."""
        if k <= 0 or slots.size == 0:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((self._ids[slots], self._weights[slots]))
        return slots[order[:k]]

    def _drop_slots(self, slots: np.ndarray) -> None:
        self._index[self._ids[slots]] = -1
        self._ids[slots] = -1
        self._dirty[slots] = False
        self._free.extend(int(s) for s in slots)
        self._size -= int(slots.size)

    def _evict_one(self) -> int:
        # prefer evicting clean entries (dirty updates would be lost);
        # choose the lowest-weight (stalest) one, lowest id on ties.
        occ = self._ids >= 0
        candidates = np.flatnonzero(occ & ~self._dirty)
        if candidates.size == 0:
            if not self.writeback:
                raise MiddlewareError(
                    "cache full of dirty entries; flush with take_dirty() "
                    "first"
                )
            # write-back: the stalest dirty entry's update is considered
            # eagerly uploaded, freeing its slot.
            candidates = np.flatnonzero(occ)
            self.writebacks += 1
        slot = int(self._pick_stalest(candidates, 1)[0])
        victim = int(self._ids[slot])
        self._drop_slots(np.array([slot], dtype=np.int64))
        self.evictions += 1
        return victim

    # -- dirty tracking (lazy upload) ---------------------------------------------------

    @property
    def dirty_count(self) -> int:
        return int(self._dirty.sum())

    def dirty_ids(self) -> List[int]:
        return sorted(int(v) for v in self._ids[self._dirty])

    def take_dirty(self, ids: Optional[np.ndarray] = None
                   ) -> Dict[int, np.ndarray]:
        """Remove and return dirty entries (all, or the given subset).

        The returned mapping is what the agent pushes to the global data
        queue; the entries stay cached but are clean afterwards.
        """
        if ids is None:
            slots = np.flatnonzero(self._dirty)
        else:
            wanted = np.asarray(ids, dtype=np.int64).ravel()
            in_range = (wanted >= 0) & (wanted < self._index.size)
            cand = self._index[wanted[in_range]]
            cand = cand[cand >= 0]
            slots = np.unique(cand[self._dirty[cand]])
        out = {int(v): self._values[s].copy()
               for v, s in zip(self._ids[slots], slots)}
        self._dirty[slots] = False
        return out

    def clear_dirty(self) -> int:
        """Mark every dirty entry clean without materializing the rows
        (the settle-after-sync fast path); returns how many were dirty."""
        n = int(self._dirty.sum())
        if n:
            self._dirty[:] = False
        return n

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class GlobalQueues:
    """The global query queue and global data queue of Algorithm 3."""

    query_lists: Dict[int, np.ndarray] = field(default_factory=dict)
    #: per-node uploads as aligned (ids, rows) arrays
    data_arrays: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)

    def push_query(self, node_id: int, vertex_ids: np.ndarray) -> None:
        """An agent announces the vertices it needs next iteration."""
        self.query_lists[node_id] = np.asarray(vertex_ids, dtype=np.int64)

    def query_union(self, exclude_node: Optional[int] = None) -> np.ndarray:
        """The broadcast union of local query lists.

        ``exclude_node`` yields "vertices some *other* node needs", which
        is what node ``exclude_node`` must upload.
        """
        arrays = [ids for node, ids in self.query_lists.items()
                  if node != exclude_node]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(arrays))

    def push_data(self, node_id: int,
                  entries: Dict[int, np.ndarray]) -> None:
        """An agent uploads the queried subset of its updated vertices."""
        ids = np.fromiter(entries.keys(), dtype=np.int64,
                          count=len(entries))
        rows = (np.stack([np.atleast_1d(v) for v in entries.values()])
                if entries else np.empty((0, 0)))
        self.push_data_arrays(node_id, ids, rows)

    def push_data_arrays(self, node_id: int, ids: np.ndarray,
                         rows: np.ndarray) -> None:
        """Array form of :meth:`push_data`: aligned ids + value rows."""
        self.data_arrays[node_id] = (
            np.asarray(ids, dtype=np.int64).ravel(),
            np.atleast_2d(np.asarray(rows)))

    def fetch_arrays(self, vertex_ids: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch requested vertices as aligned (ids, rows) arrays.

        Later uploads win for an id pushed by several nodes (mirroring
        the historical per-node overwrite order of the mapping form).
        """
        wanted = np.unique(np.asarray(vertex_ids, dtype=np.int64).ravel())
        got_ids: List[np.ndarray] = []
        got_rows: List[np.ndarray] = []
        for ids, rows in self.data_arrays.values():
            if ids.size == 0 or wanted.size == 0:
                continue
            mask = np.isin(ids, wanted)
            if mask.any():
                got_ids.append(ids[mask])
                got_rows.append(rows[mask])
        if not got_ids:
            return (np.empty(0, dtype=np.int64), np.empty((0, 0)))
        all_ids = np.concatenate(got_ids)
        all_rows = np.concatenate(got_rows)
        # keep the last occurrence of each id
        uniq, rev_first = np.unique(all_ids[::-1], return_index=True)
        keep = all_ids.size - 1 - rev_first
        return uniq, all_rows[keep]

    def fetch(self, vertex_ids: np.ndarray) -> Dict[int, np.ndarray]:
        """Fetch requested vertices from the global data queue."""
        ids, rows = self.fetch_arrays(vertex_ids)
        return {int(v): row for v, row in zip(ids, rows)}

    def clear(self) -> None:
        self.query_lists.clear()
        self.data_arrays.clear()
