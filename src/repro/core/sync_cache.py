"""Synchronization caching: LRU-weighted vertex cache + lazy upload (§III-B2).

The agent keeps a temporary vertex table so that vertices repeatedly
involved in computation are not re-downloaded from the upper system every
iteration.  Entries carry a *weight* that rises when used and decays with
the passage of iterations; when the cache is full, the stalest (lowest
weight, i.e. least recently used) entry is evicted.

.. note::
   The paper's prose says the agent "evicts the vertex with the highest
   weight" in one sentence and "chooses vertices with the lowest weights"
   for replacement in the next; since weights *increase* on use, evicting
   the highest-weight (most recently used) entry would defeat the cache.
   We implement the only internally consistent reading — evict the lowest
   weight — and note the discrepancy in DESIGN.md.

Lazy uploading (Algorithm 3) is driven by two queues: each agent pushes
the vertex ids it will need next iteration to the **global query queue**;
the union is broadcast, and each agent uploads to the **global data
queue** only its updated vertices that some other agent queried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import MiddlewareError


class LRUVertexCache:
    """Weight-decayed LRU cache of vertex attribute rows.

    Weights follow the paper's scheme: new/used entries get the current
    generation stamp (so weight effectively "decreases with the passage of
    iterations" relative to fresh entries and "increases if being used").
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise MiddlewareError(f"cache capacity must be >= 1, got "
                                  f"{capacity}")
        self.capacity = capacity
        self._values: Dict[int, np.ndarray] = {}
        self._weights: Dict[int, float] = {}
        self._dirty: Set[int] = set()
        self._generation = 0.0
        # instrumentation
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- iteration lifecycle ---------------------------------------------------

    def tick(self) -> None:
        """Advance one iteration: every resident weight ages by one."""
        self._generation += 1.0

    # -- lookups ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._values

    def lookup(self, vertex: int) -> Optional[np.ndarray]:
        """Value for ``vertex`` or None on miss; a hit bumps its weight."""
        value = self._values.get(vertex)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._weights[vertex] = self._generation
        return value

    def partition_ids(self, ids: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``ids`` into (cached, missing) without bumping weights.

        Used by the agent when costing a download batch; call
        :meth:`touch` afterwards for the ids actually used.
        """
        mask = np.fromiter((int(v) in self._values for v in ids),
                           dtype=bool, count=ids.size)
        return ids[mask], ids[~mask]

    def touch(self, ids: np.ndarray) -> None:
        """Bump weights of cached ids (counted as hits)."""
        for v in ids:
            v = int(v)
            if v in self._values:
                self._weights[v] = self._generation
                self.hits += 1

    # -- inserts / updates ------------------------------------------------------------

    def insert(self, vertex: int, value: np.ndarray) -> Optional[int]:
        """Cache a freshly downloaded vertex (counted as a miss upstream).

        Returns the evicted vertex id if the insert displaced an entry,
        else None.
        """
        vertex = int(vertex)
        evicted = None
        if vertex not in self._values and len(self._values) >= self.capacity:
            evicted = self._evict_one()
        self._values[vertex] = value
        self._weights[vertex] = self._generation
        return evicted

    def update(self, vertex: int, value: np.ndarray,
               dirty: bool = True) -> Optional[int]:
        """Write a computed result into the cache (lazy upload holds it).

        Returns the evicted vertex id if the update displaced an entry.
        """
        vertex = int(vertex)
        evicted = None
        if vertex not in self._values and len(self._values) >= self.capacity:
            evicted = self._evict_one()
        self._values[vertex] = value
        self._weights[vertex] = self._generation
        if dirty:
            self._dirty.add(vertex)
        return evicted

    def invalidate(self, vertex: int) -> None:
        """Drop an entry made stale by a foreign update (no eviction stat)."""
        vertex = int(vertex)
        self._values.pop(vertex, None)
        self._weights.pop(vertex, None)
        self._dirty.discard(vertex)

    def _evict_one(self) -> int:
        # never evict dirty entries (their updates would be lost);
        # choose the lowest-weight clean entry.
        candidates = [(w, v) for v, w in self._weights.items()
                      if v not in self._dirty]
        if not candidates:
            raise MiddlewareError(
                "cache full of dirty entries; flush with take_dirty() first"
            )
        _w, victim = min(candidates)
        del self._values[victim]
        del self._weights[victim]
        self.evictions += 1
        return victim

    # -- dirty tracking (lazy upload) ---------------------------------------------------

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def dirty_ids(self) -> List[int]:
        return sorted(self._dirty)

    def take_dirty(self, ids: Optional[np.ndarray] = None
                   ) -> Dict[int, np.ndarray]:
        """Remove and return dirty entries (all, or the given subset).

        The returned mapping is what the agent pushes to the global data
        queue; the entries stay cached but are clean afterwards.
        """
        if ids is None:
            chosen = list(self._dirty)
        else:
            wanted = {int(v) for v in ids}
            chosen = [v for v in self._dirty if v in wanted]
        out = {v: self._values[v] for v in chosen}
        self._dirty.difference_update(chosen)
        return out

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class GlobalQueues:
    """The global query queue and global data queue of Algorithm 3."""

    query_lists: Dict[int, np.ndarray] = field(default_factory=dict)
    data_entries: Dict[int, Dict[int, np.ndarray]] = field(
        default_factory=dict)

    def push_query(self, node_id: int, vertex_ids: np.ndarray) -> None:
        """An agent announces the vertices it needs next iteration."""
        self.query_lists[node_id] = np.asarray(vertex_ids, dtype=np.int64)

    def query_union(self, exclude_node: Optional[int] = None) -> np.ndarray:
        """The broadcast union of local query lists.

        ``exclude_node`` yields "vertices some *other* node needs", which
        is what node ``exclude_node`` must upload.
        """
        arrays = [ids for node, ids in self.query_lists.items()
                  if node != exclude_node]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(arrays))

    def push_data(self, node_id: int,
                  entries: Dict[int, np.ndarray]) -> None:
        """An agent uploads the queried subset of its updated vertices."""
        self.data_entries[node_id] = entries

    def fetch(self, vertex_ids: np.ndarray) -> Dict[int, np.ndarray]:
        """Fetch requested vertices from the global data queue."""
        wanted = {int(v) for v in vertex_ids}
        out: Dict[int, np.ndarray] = {}
        for entries in self.data_entries.values():
            for v, value in entries.items():
                if v in wanted:
                    out[v] = value
        return out

    def clear(self) -> None:
        self.query_lists.clear()
        self.data_entries.clear()
