"""GX-Plug: the middleware facade.

A :class:`GXPlug` instance owns one agent per distributed node (each agent
attached to the node's accelerators as daemons) plus the global lazy-upload
queues.  Plugging it into an engine is the paper's "few lines of code"::

    cluster = make_cluster(4, gpus_per_node=1)
    plug = GXPlug(cluster)
    engine = PowerGraphEngine(pgraph, cluster, middleware=plug)
    result = engine.run(PageRank())
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from ..cluster.cluster import Cluster
from ..errors import MiddlewareError
from ..fault.inject import FaultInjector
from ..fault.report import FaultReport, fault_report
from ..fault.straggler import StragglerDetector
from ..ipc.shm import ShmRegistry
from .agent import Agent
from .config import MiddlewareConfig, RuntimeConfig
from .sync_cache import GlobalQueues


class GXPlug:
    """The middleware: agents + daemons for every node of a cluster."""

    def __init__(self, cluster: Cluster,
                 config: Optional[MiddlewareConfig] = None,
                 **legacy) -> None:
        if isinstance(config, RuntimeConfig):
            config = config.middleware()
        if legacy:
            # deprecation shim: loose MiddlewareConfig fields as kwargs
            # (the pre-RuntimeConfig calling convention)
            warnings.warn(
                "passing middleware settings to GXPlug as loose keyword "
                "arguments is deprecated; build a RuntimeConfig "
                "(repro.api) or a MiddlewareConfig instead",
                DeprecationWarning, stacklevel=2)
            base = config if config is not None else MiddlewareConfig()
            config = base.with_(**legacy)
        self.cluster = cluster
        self.config = config if config is not None else MiddlewareConfig()
        self.registry = ShmRegistry()
        accelerated = [n for n in cluster.nodes if n.accelerators]
        if not accelerated:
            raise MiddlewareError(
                "GX-Plug needs at least one accelerator in the cluster"
            )
        if len(accelerated) != len(cluster.nodes):
            missing = [n.node_id for n in cluster.nodes
                       if not n.accelerators]
            raise MiddlewareError(
                f"every node needs an accelerator to plug; nodes {missing} "
                f"have none"
            )
        self.agents: Dict[int, Agent] = {
            node.node_id: Agent(node, self.registry, self.config)
            for node in cluster.nodes
        }
        self.queues = GlobalQueues()
        # gray-failure tolerance: one cluster-wide straggler detector so
        # the cross-daemon median inflation spans every node's daemons
        self.straggler: Optional[StragglerDetector] = None
        if self.config.straggler.enabled:
            self.straggler = StragglerDetector(
                ratio=self.config.straggler.ratio,
                patience=self.config.straggler.patience,
                alpha=self.config.straggler.ewma_alpha,
                link_ratio=self.config.straggler.link_ratio)
            for agent in self.agents.values():
                agent.set_straggler_detector(self.straggler)
        self.connected = False
        # network fault tolerance: route collectives through the
        # resilient transport so armed network faults have a place to go
        self.transport = None
        if self.config.network_resilient:
            self.transport = cluster.resilient_transport(
                max_retransmits=self.config.max_retry_attempts,
                ack_timeout_ms=self.config.net_ack_timeout_ms,
                retransmit_base_ms=self.config.net_retransmit_base_ms,
                backoff_factor=self.config.retry_backoff_factor,
            )
            # per-link gray-failure detection: the transport reports
            # every topology collective's fragment times to the detector
            if self.straggler is not None:
                self.transport.set_link_observer(self.straggler)
        # fault subsystem: the injector holds the deterministic schedule
        # and arms it superstep by superstep (engines call arm_faults)
        self.injector: Optional[FaultInjector] = None
        if self.config.fault_plan is not None:
            self.injector = FaultInjector(self.config.fault_plan)
            self.injector.validate_against(self.agents, self.transport)

    def connect_all(self) -> float:
        """Connect every agent; returns the total simulated setup cost.

        Daemons on different nodes initialize in parallel, so the cluster
        pays the slowest node's setup, not the sum.
        """
        if self.connected:
            raise MiddlewareError("middleware already connected")
        self.connected = True
        costs = [agent.connect() for agent in self.agents.values()]
        return max(costs) if costs else 0.0

    def disconnect_all(self) -> None:
        if not self.connected:
            return
        for agent in self.agents.values():
            agent.disconnect()
        self.connected = False

    def agent_for(self, node_id: int) -> Agent:
        if node_id not in self.agents:
            raise MiddlewareError(f"no agent for node {node_id}")
        return self.agents[node_id]

    def arm_faults(self, superstep: int) -> int:
        """Arm the fault plan's events for ``superstep``; returns how many
        fired.  A no-op without a plan (the common case)."""
        if self.injector is None:
            return 0
        return self.injector.arm(superstep, self.agents, self.transport)

    def fault_report(self, result=None) -> FaultReport:
        """Aggregate fault/recovery counters across the deployment."""
        return fault_report(self, result)

    def degraded_nodes(self) -> List[int]:
        """Nodes that fell back to their host compute path."""
        return sorted(node_id for node_id, agent in self.agents.items()
                      if agent.degraded)

    def total_middleware_ms(self) -> float:
        return sum(a.total_middleware_ms for a in self.agents.values())

    def scheduler_counters(self) -> Dict[str, int]:
        """Event-loop telemetry summed across every agent's passes:
        events popped, cohort batches, largest cohort, heap peak."""
        agents = self.agents.values()
        return {
            "sched_events": sum(a.sched_events for a in agents),
            "sched_batches": sum(a.sched_batches for a in agents),
            "sched_max_batch": max(
                (a.sched_max_batch for a in agents), default=0),
            "sched_heap_peak": max(
                (a.sched_heap_peak for a in agents), default=0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"GXPlug({len(self.agents)} agents, "
                f"connected={self.connected})")
