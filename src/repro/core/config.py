"""Middleware configuration.

One :class:`MiddlewareConfig` collects every optimization toggle the paper
evaluates, so each figure's bench is an ablation of exactly one knob:

* ``pipeline`` / ``block_size``      — §III-A  (Fig. 10, Fig. 15)
* ``sync_cache`` / ``lazy_upload``   — §III-B2 (Fig. 11(a))
* ``sync_skip``                      — §III-B3 (Fig. 11(b))
* ``balance``                        — §III-C  (Fig. 12)
* ``runtime_isolation``              — §IV-C   (Fig. 13)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import MiddlewareError


@dataclass(frozen=True)
class MiddlewareConfig:
    """Feature toggles and tunables for a GX-Plug deployment."""

    #: Run the 3-stage pipeline shuffle (§III-A).  When off, the five-step
    #: sequential flow is used (download, transfer, compute, transfer,
    #: upload — the "Without pipeline" bars of Fig. 10).
    pipeline: bool = True

    #: Fixed triplet-block size.  ``None`` selects the Lemma-1 optimal
    #: size per iteration ("Pipeline*"); an integer pins it ("Pipeline").
    block_size: Optional[int] = None

    #: LRU-weighted vertex caching on agents (§III-B2a).
    sync_cache: bool = True

    #: Cache capacity in vertices; ``None`` sizes it to the node's
    #: referenced vertex count (everything fits — the paper's agents cache
    #: a "temporary vertex table").
    cache_capacity: Optional[int] = None

    #: Lazy uploading through the global query/data queues (§III-B2b).
    lazy_upload: bool = True

    #: Synchronization skipping (§III-B3).
    sync_skip: bool = True

    #: Depth bound on the locally combined iterations of a skipping
    #: superstep.  Unbounded local fast-forward can re-propagate stale
    #: improvements back and forth across partition boundaries (wasted
    #: re-work on long-diameter graphs); a moderate bound keeps most of
    #: the synchronization savings without the ping-pong.
    skip_max_local_iterations: int = 10

    #: Capacity-aware workload balancing (§III-C) applied when the runner
    #: partitions the graph / allocates accelerators.
    balance: bool = True

    #: Keep daemons alive between iterations (§IV-C).  When off, devices
    #: re-initialize on every request — the "direct GPU call" side of
    #: Fig. 13.
    runtime_isolation: bool = True

    #: Extra invariant checking inside the middleware (tests only).
    validate: bool = False

    def __post_init__(self) -> None:
        if self.block_size is not None and self.block_size < 1:
            raise MiddlewareError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise MiddlewareError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.skip_max_local_iterations < 1:
            raise MiddlewareError(
                f"skip_max_local_iterations must be >= 1, got "
                f"{self.skip_max_local_iterations}"
            )
        if self.lazy_upload and not self.sync_cache:
            raise MiddlewareError(
                "lazy_upload requires sync_cache (updates are held in the "
                "agent cache until queried)"
            )
        if self.sync_skip and not self.sync_cache:
            raise MiddlewareError(
                "sync_skip builds on synchronization caching (§III-B3)"
            )

    def with_(self, **changes) -> "MiddlewareConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: Everything on — the full GX-Plug as evaluated in Fig. 8/9.
FULL = MiddlewareConfig()

#: Every optimization off — the naive daemon-agent integration.
BASELINE = MiddlewareConfig(
    pipeline=False,
    sync_cache=False,
    lazy_upload=False,
    sync_skip=False,
    balance=False,
)
