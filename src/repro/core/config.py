"""Middleware configuration.

One :class:`MiddlewareConfig` collects every optimization toggle the paper
evaluates, so each figure's bench is an ablation of exactly one knob:

* ``pipeline`` / ``block_size``      — §III-A  (Fig. 10, Fig. 15)
* ``sync_cache`` / ``lazy_upload``   — §III-B2 (Fig. 11(a))
* ``sync_skip``                      — §III-B3 (Fig. 11(b))
* ``balance``                        — §III-C  (Fig. 12)
* ``runtime_isolation``              — §IV-C   (Fig. 13)

plus the fault-tolerance subsystem's knobs (``fault_plan``,
``monitor_heartbeats``, ``checkpoint_interval``, the retry policy and
``degrade_to_host``) — see :mod:`repro.fault` and
``docs/fault_tolerance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import MiddlewareError
from ..fault.inject import FaultPlan


@dataclass(frozen=True)
class StragglerConfig:
    """Gray-failure tolerance knobs (:mod:`repro.fault.straggler`).

    Off by default — detection is zero-simulated-cost bookkeeping, but
    the responses (speculation, online re-estimation) change how a run
    spends its time under gray faults, so they are an explicit opt-in
    (on in the ``RESILIENT`` presets).
    """

    #: Track per-daemon EWMA inflation and issue StragglerVerdicts.
    enabled: bool = False

    #: A pair whose EWMA inflation exceeds the cross-daemon median by
    #: this multiple is slow enough to flag.
    ratio: float = 3.0

    #: Consecutive over-ratio observations before the verdict (and
    #: consecutive healthy ones before the flag clears).
    patience: int = 3

    #: EWMA smoothing of the per-block inflation observations.
    ewma_alpha: float = 0.5

    #: Re-issue a flagged straggler's pending block to the fastest idle
    #: daemon; first finisher wins (deterministic tie-break), the
    #: loser's result is discarded and its time charged as waste.
    speculate: bool = False

    #: How many expected-durations a flagged pair's block may run before
    #: the speculative copy launches (also scales the monitor's
    #: per-phase deadline budgets).
    speculation_headroom: float = 2.0

    #: Feed observed per-node times back into the Lemma-2 coefficient
    #: estimates and repartition when the estimated shares drift.
    reestimate: bool = False

    #: Total-variation distance between estimated and current partition
    #: shares that triggers an online repartition.
    share_divergence: float = 0.10

    #: Supersteps to wait between online repartitions.
    rebalance_cooldown: int = 2

    #: Flag threshold for per-*link* inflation (uplink fragments over a
    #: rack topology, judged against the other links' median); ``None``
    #: reuses ``ratio``.
    link_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if self.link_ratio is not None and self.link_ratio <= 1.0:
            raise MiddlewareError(
                f"link_ratio must be > 1, got {self.link_ratio}"
            )
        if self.ratio <= 1.0:
            raise MiddlewareError(
                f"straggler ratio must be > 1, got {self.ratio}"
            )
        if self.patience < 1:
            raise MiddlewareError(
                f"straggler patience must be >= 1, got {self.patience}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise MiddlewareError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.speculation_headroom < 1.0:
            raise MiddlewareError(
                f"speculation_headroom must be >= 1, got "
                f"{self.speculation_headroom}"
            )
        if not 0.0 < self.share_divergence < 1.0:
            raise MiddlewareError(
                f"share_divergence must be in (0, 1), got "
                f"{self.share_divergence}"
            )
        if self.rebalance_cooldown < 1:
            raise MiddlewareError(
                f"rebalance_cooldown must be >= 1, got "
                f"{self.rebalance_cooldown}"
            )
        if (self.speculate or self.reestimate) and not self.enabled:
            raise MiddlewareError(
                "straggler responses (speculate / reestimate) require "
                "enabled=True — there is nothing to respond to without "
                "detection"
            )

    def with_(self, **changes) -> "StragglerConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MiddlewareConfig:
    """Feature toggles and tunables for a GX-Plug deployment."""

    #: Run the 3-stage pipeline shuffle (§III-A).  When off, the five-step
    #: sequential flow is used (download, transfer, compute, transfer,
    #: upload — the "Without pipeline" bars of Fig. 10).
    pipeline: bool = True

    #: Fixed triplet-block size.  ``None`` selects the Lemma-1 optimal
    #: size per iteration ("Pipeline*"); an integer pins it ("Pipeline").
    block_size: Optional[int] = None

    #: LRU-weighted vertex caching on agents (§III-B2a).
    sync_cache: bool = True

    #: Cache capacity in vertices; ``None`` sizes it to the node's
    #: referenced vertex count (everything fits — the paper's agents cache
    #: a "temporary vertex table").
    cache_capacity: Optional[int] = None

    #: Lazy uploading through the global query/data queues (§III-B2b).
    lazy_upload: bool = True

    #: Synchronization skipping (§III-B3).
    sync_skip: bool = True

    #: Depth bound on the locally combined iterations of a skipping
    #: superstep.  Unbounded local fast-forward can re-propagate stale
    #: improvements back and forth across partition boundaries (wasted
    #: re-work on long-diameter graphs); a moderate bound keeps most of
    #: the synchronization savings without the ping-pong.
    skip_max_local_iterations: int = 10

    #: Capacity-aware workload balancing (§III-C) applied when the runner
    #: partitions the graph / allocates accelerators.
    balance: bool = True

    #: Keep daemons alive between iterations (§IV-C).  When off, devices
    #: re-initialize on every request — the "direct GPU call" side of
    #: Fig. 13.
    runtime_isolation: bool = True

    #: Extra invariant checking inside the middleware (tests only).
    validate: bool = False

    # -- fault tolerance (repro.fault) ------------------------------------

    #: Deterministic fault schedule to inject, armed superstep by
    #: superstep; ``None`` injects nothing.
    fault_plan: Optional[FaultPlan] = None

    #: Per-daemon heartbeats with a watchdog on every pipelined pass.
    #: Required to *detect* stall faults (hangs, dropped control
    #: messages); off by default so fault-free deployments pay nothing.
    monitor_heartbeats: bool = False

    #: Watchdog wake period on the simulated clock.
    heartbeat_interval_ms: float = 2.0

    #: Silence (past any busy lease) tolerated before a daemon is
    #: declared dead.  Detection latency for a stalled pass is at most
    #: ``timeout + interval`` simulated ms.
    heartbeat_timeout_ms: float = 12.0

    #: Checkpoint the vertex tables every N supersteps (0 disables).
    #: With checkpoints, unrecoverable faults roll back to the last
    #: consistent superstep instead of restarting from iteration 0.
    checkpoint_interval: int = 0

    #: Checkpoint cost model: per-cell and fixed simulated cost of one
    #: vertex-table snapshot (and of reading it back on rollback).
    checkpoint_ms_per_cell: float = 2e-5
    checkpoint_fixed_ms: float = 0.5

    #: Speculative checkpointing: *delta* snapshot writes are issued
    #: behind the superstep barrier and overlap the next superstep's
    #: compute window, so only their overflow (a write longer than the
    #: window) shows up as overhead.  Full snapshots still charge
    #: synchronously — they gate the consistency point.  Off by default:
    #: every committed figure keeps the synchronous accounting.
    speculative_checkpoint: bool = False

    #: Transient-fault retry policy (exponential backoff).
    max_retry_attempts: int = 3
    retry_base_delay_ms: float = 0.5
    retry_backoff_factor: float = 2.0

    #: When a node's accelerators stay broken past the retry budget,
    #: degrade that node to the host (CPU baseline) compute path instead
    #: of failing the job.  Off by default: exhaustion re-raises, which
    #: is the pre-fault-subsystem behaviour.
    degrade_to_host: bool = False

    # -- network-layer fault tolerance (repro.cluster.network) -------------

    #: Route sync collectives through the resilient transport (acks,
    #: sequence-number dedupe, timeout + backoff retransmission, p2p
    #: fallback for failed rounds).  Required to arm network fault kinds;
    #: off by default — the fault-free path pays zero overhead either
    #: way, but the bare model keeps the original behaviour exactly.
    network_resilient: bool = False

    #: Silence tolerated before a collective fragment is presumed lost
    #: and retransmitted.
    net_ack_timeout_ms: float = 1.0

    #: Base backoff before the first retransmission; later attempts grow
    #: by ``retry_backoff_factor``.  The attempt budget is shared with
    #: daemon-pass retries (``max_retry_attempts``).
    net_retransmit_base_ms: float = 0.5

    #: Recompute Lemma-2 partition shares and repartition the graph when
    #: a node degrades to its host path, so the degraded node stops
    #: straggling every subsequent superstep.  Requires
    #: ``degrade_to_host``; charged as a partition-exchange network cost
    #: at rollback time.
    rebalance_on_degrade: bool = False

    # -- gray-failure tolerance (repro.fault.straggler) --------------------

    #: Straggler detection and its responses; see :class:`StragglerConfig`.
    straggler: StragglerConfig = StragglerConfig()

    # -- event loop (repro.ipc) --------------------------------------------

    #: Run passes on the cohort-batched event scheduler
    #: (:class:`~repro.ipc.scheduler.BatchedScheduler`) instead of the
    #: per-event oracle.  Observationally identical (same times,
    #: category totals, and message orders — property-tested), but pops
    #: whole same-timestamp event cohorts per loop iteration, which is
    #: what keeps 1000-node twins scheduler-bound rather than
    #: interpreter-bound.  Turn off to fall back to the per-event
    #: reference core.
    batch_events: bool = True

    def __post_init__(self) -> None:
        if self.block_size is not None and self.block_size < 1:
            raise MiddlewareError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise MiddlewareError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.skip_max_local_iterations < 1:
            raise MiddlewareError(
                f"skip_max_local_iterations must be >= 1, got "
                f"{self.skip_max_local_iterations}"
            )
        if self.lazy_upload and not self.sync_cache:
            raise MiddlewareError(
                "lazy_upload requires sync_cache (updates are held in the "
                "agent cache until queried)"
            )
        if self.sync_skip and not self.sync_cache:
            raise MiddlewareError(
                "sync_skip builds on synchronization caching (§III-B3)"
            )
        if self.heartbeat_interval_ms <= 0:
            raise MiddlewareError(
                f"heartbeat_interval_ms must be > 0, got "
                f"{self.heartbeat_interval_ms}"
            )
        if self.heartbeat_timeout_ms < self.heartbeat_interval_ms:
            raise MiddlewareError(
                f"heartbeat_timeout_ms ({self.heartbeat_timeout_ms}) must "
                f"be >= heartbeat_interval_ms "
                f"({self.heartbeat_interval_ms})"
            )
        if self.monitor_heartbeats and not self.pipeline:
            raise MiddlewareError(
                "monitor_heartbeats requires the pipelined protocol: "
                "heartbeats ride on the Algorithm 1-2 message exchange"
            )
        if self.checkpoint_interval < 0:
            raise MiddlewareError(
                f"checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}"
            )
        if min(self.checkpoint_ms_per_cell, self.checkpoint_fixed_ms) < 0:
            raise MiddlewareError("negative checkpoint cost model")
        if self.max_retry_attempts < 0:
            raise MiddlewareError(
                f"max_retry_attempts must be >= 0, got "
                f"{self.max_retry_attempts}"
            )
        if self.retry_base_delay_ms < 0:
            raise MiddlewareError(
                f"retry_base_delay_ms must be >= 0, got "
                f"{self.retry_base_delay_ms}"
            )
        if self.retry_backoff_factor < 1.0:
            raise MiddlewareError(
                f"retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        if self.speculative_checkpoint and self.checkpoint_interval < 1:
            raise MiddlewareError(
                "speculative_checkpoint overlaps delta snapshot writes "
                "with compute; it requires checkpoint_interval >= 1"
            )
        if (self.fault_plan is not None and self.fault_plan.requires_monitor
                and not self.monitor_heartbeats):
            raise MiddlewareError(
                "the fault plan contains stall faults (hang / message "
                "drop); detecting them requires monitor_heartbeats=True"
            )
        if self.net_ack_timeout_ms <= 0:
            raise MiddlewareError(
                f"net_ack_timeout_ms must be > 0, got "
                f"{self.net_ack_timeout_ms}"
            )
        if self.net_retransmit_base_ms < 0:
            raise MiddlewareError(
                f"net_retransmit_base_ms must be >= 0, got "
                f"{self.net_retransmit_base_ms}"
            )
        if (self.fault_plan is not None
                and self.fault_plan.requires_transport
                and not self.network_resilient):
            raise MiddlewareError(
                "the fault plan contains network faults (net_drop / "
                "net_delay / net_dup / sync_fail / node_partition / "
                "link_slow / link_flaky); surviving them requires "
                "network_resilient=True"
            )
        if self.rebalance_on_degrade and not self.degrade_to_host:
            raise MiddlewareError(
                "rebalance_on_degrade rebalances at degradation rollback "
                "time; it requires degrade_to_host=True"
            )
        if self.straggler.speculate and not self.pipeline:
            raise MiddlewareError(
                "speculative block re-execution rides the pipelined "
                "protocol (Algorithms 1-2); it requires pipeline=True"
            )

    def with_(self, **changes) -> "MiddlewareConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: Everything on — the full GX-Plug as evaluated in Fig. 8/9.
FULL = MiddlewareConfig()

#: Every optimization off — the naive daemon-agent integration.
BASELINE = MiddlewareConfig(
    pipeline=False,
    sync_cache=False,
    lazy_upload=False,
    sync_skip=False,
    balance=False,
)

#: FULL plus the fault-tolerance layer: heartbeat monitoring, periodic
#: superstep checkpoints, CPU degradation when accelerators die, and the
#: gray-failure tier (straggler detection, speculative re-execution,
#: online Lemma-2 re-estimation).
RESILIENT = MiddlewareConfig(
    monitor_heartbeats=True,
    checkpoint_interval=2,
    degrade_to_host=True,
    straggler=StragglerConfig(enabled=True, speculate=True,
                              reestimate=True),
)

#: RESILIENT plus the network layer: resilient sync collectives
#: (acks, dedupe, retransmission, p2p fallback) and Lemma-2 partition
#: rebalancing when a node degrades to its host path.
NETWORK_RESILIENT = MiddlewareConfig(
    monitor_heartbeats=True,
    checkpoint_interval=2,
    degrade_to_host=True,
    network_resilient=True,
    rebalance_on_degrade=True,
    straggler=StragglerConfig(enabled=True, speculate=True,
                              reestimate=True),
)

#: Named presets resolvable through :meth:`RuntimeConfig.preset`.
PRESETS = {
    "full": FULL,
    "baseline": BASELINE,
    "resilient": RESILIENT,
    "network-resilient": NETWORK_RESILIENT,
    "network_resilient": NETWORK_RESILIENT,
}


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of the simulated cluster — the blessed
    way to build one (:mod:`repro.api`), subsuming the ``make_cluster``
    / ``NetworkModel`` / ``Topology`` kwargs that used to thread through
    engines, benches and the CLI.

    ``topology`` is a spec string (``"rack:RxN"`` — R racks of N nodes —
    or ``"flat:N"``); ``None`` keeps the historical flat interconnect.
    The optional ``latency_ms`` / ``ms_per_byte`` / ``coord_ms_per_node``
    override the base :class:`NetworkModel` fields; the cross factors
    scale the intra-rack link into the cross-rack default.  The spec is
    plain data: :meth:`to_dict` is recorded verbatim in trace JSON.
    """

    nodes: int = 4
    gpus_per_node: int = 1
    cpus_per_node: int = 0
    runtime: str = "native"
    topology: Optional[str] = None
    latency_ms: Optional[float] = None
    ms_per_byte: Optional[float] = None
    coord_ms_per_node: Optional[float] = None
    cross_latency_factor: float = 4.0
    cross_byte_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise MiddlewareError(f"need >=1 nodes, got {self.nodes}")
        if self.gpus_per_node < 0 or self.cpus_per_node < 0:
            raise MiddlewareError("accelerator counts must be >= 0")
        if self.runtime not in ("native", "jvm"):
            raise MiddlewareError(
                f"unknown runtime {self.runtime!r} (want 'native'/'jvm')")
        if min(self.cross_latency_factor, self.cross_byte_factor) < 1.0:
            raise MiddlewareError("cross-rack factors must be >= 1")
        for name in ("latency_ms", "ms_per_byte", "coord_ms_per_node"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise MiddlewareError(f"{name} must be >= 0, got {value}")
        if self.topology is not None:
            from ..cluster.topology import Topology
            racks = Topology.parse_spec(self.topology)
            spanned = sum(len(r) for r in racks)
            if spanned != self.nodes:
                raise MiddlewareError(
                    f"topology {self.topology!r} spans {spanned} nodes, "
                    f"spec asks for {self.nodes}")
            for (src, dst) in Topology.parse_link_overrides(self.topology):
                for end in (src, dst):
                    if not 0 <= end < self.nodes:
                        raise MiddlewareError(
                            f"topology {self.topology!r} overrides link "
                            f"({src}, {dst}) but node {end} is outside "
                            f"0..{self.nodes - 1}")

    def network_model(self):
        """The base :class:`NetworkModel` with any field overrides."""
        from ..cluster.network import DEFAULT_NETWORK, NetworkModel
        if (self.latency_ms is None and self.ms_per_byte is None
                and self.coord_ms_per_node is None):
            return DEFAULT_NETWORK
        base = DEFAULT_NETWORK
        return NetworkModel(
            latency_ms=(self.latency_ms if self.latency_ms is not None
                        else base.latency_ms),
            ms_per_byte=(self.ms_per_byte if self.ms_per_byte is not None
                         else base.ms_per_byte),
            coord_ms_per_node=(self.coord_ms_per_node
                               if self.coord_ms_per_node is not None
                               else base.coord_ms_per_node))

    def build_topology(self):
        """The resolved :class:`Topology`, or ``None`` for flat."""
        if self.topology is None:
            return None
        from ..cluster.topology import Topology
        return Topology.from_spec(
            self.topology, base=self.network_model(),
            cross_latency_factor=self.cross_latency_factor,
            cross_byte_factor=self.cross_byte_factor)

    def build(self):
        """Materialize the :class:`~repro.cluster.cluster.Cluster`."""
        from ..cluster.cluster import Cluster, make_cluster
        from ..cluster.node import JVM_RUNTIME, NATIVE_RUNTIME
        runtime = JVM_RUNTIME if self.runtime == "jvm" else NATIVE_RUNTIME
        cluster = make_cluster(self.nodes, gpus_per_node=self.gpus_per_node,
                               cpu_accels_per_node=self.cpus_per_node,
                               runtime=runtime)
        return Cluster(cluster.nodes, self.network_model(),
                       topology=self.build_topology())

    def to_dict(self) -> dict:
        """The spec as plain JSON types, for trace recording."""
        return {
            "nodes": self.nodes,
            "gpus_per_node": self.gpus_per_node,
            "cpus_per_node": self.cpus_per_node,
            "runtime": self.runtime,
            "topology": self.topology,
            "latency_ms": self.latency_ms,
            "ms_per_byte": self.ms_per_byte,
            "coord_ms_per_node": self.coord_ms_per_node,
            "cross_latency_factor": self.cross_latency_factor,
            "cross_byte_factor": self.cross_byte_factor,
        }

    def with_(self, **changes) -> "ClusterSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RuntimeConfig:
    """Composable builder over :class:`MiddlewareConfig` — the blessed
    way to assemble a deployment (:mod:`repro.api`).

    Start from a named preset and chain grouped ``with_*`` methods; each
    returns a new immutable builder.  :meth:`middleware` yields the
    underlying :class:`MiddlewareConfig`, and builder equality is config
    equality — ``RuntimeConfig.preset("full").middleware() == FULL``
    bit-for-bit, which is what keeps the legacy preset constants and the
    16 figure benches byte-identical under the new surface.
    """

    config: MiddlewareConfig = MiddlewareConfig()

    @classmethod
    def preset(cls, name: str) -> "RuntimeConfig":
        """A builder seeded from a named preset (``"full"`` /
        ``"baseline"`` / ``"resilient"`` / ``"network-resilient"``)."""
        try:
            return cls(PRESETS[name])
        except KeyError:
            raise MiddlewareError(
                f"unknown preset {name!r}; expected one of "
                f"{sorted(set(PRESETS))}") from None

    def middleware(self) -> MiddlewareConfig:
        """The resolved :class:`MiddlewareConfig`."""
        return self.config

    def with_(self, **changes) -> "RuntimeConfig":
        """Replace arbitrary :class:`MiddlewareConfig` fields."""
        return RuntimeConfig(self.config.with_(**changes))

    def with_pipeline(self, enabled: bool = True, *,
                      block_size: Optional[int] = None) -> "RuntimeConfig":
        """§III-A pipelining: on/off and the triplet block size."""
        return self.with_(pipeline=enabled, block_size=block_size)

    def with_sync(self, *, cache: bool = True, lazy_upload: bool = True,
                  skip: bool = True) -> "RuntimeConfig":
        """§III-B synchronization optimizations."""
        return self.with_(sync_cache=cache, lazy_upload=lazy_upload,
                          sync_skip=skip)

    def with_faults(self, plan: Optional[FaultPlan] = None, *,
                    monitor: bool = True, checkpoint_interval: int = 2,
                    degrade_to_host: bool = True,
                    rebalance_on_degrade: bool = False) -> "RuntimeConfig":
        """The daemon-edge fault-tolerance tier."""
        return self.with_(fault_plan=plan, monitor_heartbeats=monitor,
                          checkpoint_interval=checkpoint_interval,
                          degrade_to_host=degrade_to_host,
                          rebalance_on_degrade=rebalance_on_degrade)

    def with_network(self, resilient: bool = True, *,
                     ack_timeout_ms: float = 1.0,
                     retransmit_base_ms: float = 0.5) -> "RuntimeConfig":
        """The resilient-transport tier (required for network and
        link fault kinds)."""
        return self.with_(network_resilient=resilient,
                          net_ack_timeout_ms=ack_timeout_ms,
                          net_retransmit_base_ms=retransmit_base_ms)

    def with_straggler(self, enabled: bool = True,
                       **knobs) -> "RuntimeConfig":
        """The gray-failure tier; ``knobs`` are
        :class:`StragglerConfig` fields (``ratio``, ``patience``,
        ``speculate``, ``reestimate``, ``link_ratio``, ...)."""
        return self.with_(
            straggler=self.config.straggler.with_(enabled=enabled, **knobs))
