"""The agent: the upper system's bridge to its daemons (§II-A2, Alg. 2).

An agent lives in a distributed node.  It owns the node's vertex/edge
tables, builds triplet blocks through the vertex-edge mapping table, runs
the pipeline-shuffle protocol against each attached daemon (Algorithm 2),
and carries the synchronization cache.  Its operation interfaces are the
paper's: ``connect`` / ``update`` / ``request_gen`` / ``request_merge`` /
``request_apply`` / ``disconnect``.

Timing: every data movement and kernel charges simulated milliseconds;
an :class:`EdgePassResult` reports both the pipeline makespan (what the
iteration costs) and the per-category busy times (what Fig. 14's
middleware-cost-ratio accounting consumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterator, List, Optional, Tuple

import numpy as np

from ..cluster.node import DistributedNode
from ..errors import (
    AcceleratorsExhausted,
    DaemonDead,
    DeviceFailure,
    FaultError,
    MiddlewareError,
    ProtocolError,
)
from ..fault.monitor import HeartbeatMonitor
from ..fault.retry import RetryPolicy
from ..fault.straggler import StragglerDetector
from ..ipc import (BatchedScheduler, Channel, Join, Now, Recv, Scheduler,
                   Send, Sleep, Spawn)
from ..ipc.shm import ShmRegistry
from .blocks import TripletBlock, build_blocks
from .config import MiddlewareConfig
from .daemon import (
    CAT_COMPUTE,
    CAT_DOWNLOAD,
    CAT_INIT,
    CAT_UPLOAD,
    Daemon,
    MSG_COMPUTE_ALL_FINISHED,
    MSG_COMPUTE_FINISHED,
    MSG_EXCHANGE_FINISHED,
    MSG_ROTATE_FINISHED,
)
from .pipeline import PipelineCoefficients
from .sync_cache import LRUVertexCache
from .template import AlgorithmTemplate, MessageSet

#: Reading a cached vertex from the agent's local table instead of
#: downloading it from the upper system costs this fraction of k1/k3.
LOCAL_ACCESS_FACTOR = 0.05

#: Default retry budget: a pass survives at most this many faults before
#: the failure propagates (or the node degrades to its host path).
#: Mirrors ``MiddlewareConfig.max_retry_attempts``.
MAX_RECOVERY_ATTEMPTS = 3

#: The two data-transfer steps the shared-memory design eliminates
#: (agent->daemon and daemon->agent copies of the 5-step flow, §III-A1),
#: as a fraction of the download/upload per-entity costs.
NAIVE_COPY_FACTOR = 0.35

#: Agent-internal control message: a speculative backup finished a
#: straggler's block first.  Injected into the straggler's ``to_agent``
#: channel so the agent's single Recv races it against the primary's
#: ComputeFinished — scheduler (time, seq) order is the deterministic
#: tie-break (the earlier *send* wins an exact tie).
MSG_SPECULATED = "SpeculativeResult"


@dataclass
class EdgePassResult:
    """Outcome of one node's (pipelined) edge computation pass."""

    partial: MessageSet
    elapsed_ms: float
    entities: int
    blocks: int
    breakdown: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0


class Agent:
    """One distributed node's agent, attached to its daemons."""

    def __init__(self, node: DistributedNode, registry: ShmRegistry,
                 config: MiddlewareConfig) -> None:
        if not node.accelerators:
            raise MiddlewareError(
                f"node {node.node_id} has no accelerators to plug"
            )
        self.node = node
        self.config = config
        self.registry = registry
        self.daemons: List[Daemon] = []
        for accel in node.accelerators:
            daemon = Daemon(registry.allocate_daemon_id(), accel, registry,
                            config)
            self.daemons.append(daemon)
        self.cache: Optional[LRUVertexCache] = None
        #: fraction of a pass's triplets requiring a fresh vertex fetch
        #: (cold caches ~ unique-vertex fraction, warm caches ~ 0)
        self._last_fetch_ratio = 1.0
        self.connected = False
        # fault tolerance: retry policy, degradation state
        self._retry = RetryPolicy.from_config(config)
        self.degraded = False
        # gray-failure tolerance: the straggler detector (replaced by the
        # middleware's shared, cluster-wide instance when one exists)
        self.straggler: Optional[StragglerDetector] = None
        if config.straggler.enabled:
            self.straggler = StragglerDetector(
                ratio=config.straggler.ratio,
                patience=config.straggler.patience,
                alpha=config.straggler.ewma_alpha)
        self._bind_detector()
        # speculative re-execution bookkeeping for the current pass
        self._spec_pending: List[dict] = []
        self._abandoned: List[Daemon] = []
        # lifetime instrumentation
        self.total_middleware_ms = 0.0
        self.total_entities = 0
        self.recoveries = 0
        self.retries = 0
        self.recovered_passes = 0
        self.heartbeat_verdicts = 0
        # event-loop telemetry accumulated across every pass's scheduler
        self.sched_events = 0
        self.sched_batches = 0
        self.sched_max_batch = 0
        self.sched_heap_peak = 0

    def _bind_detector(self) -> None:
        """Point every daemon at the agent's current detector (daemons
        observe their own compute durations into it)."""
        for daemon in self.daemons:
            daemon.straggler = self.straggler

    def set_straggler_detector(self, detector: StragglerDetector) -> None:
        """Adopt a shared (cluster-wide) detector — the middleware calls
        this so the cross-daemon median spans every node's daemons."""
        self.straggler = detector
        self._bind_detector()

    # -- operation interfaces (§IV-A2) --------------------------------------------

    def connect(self) -> float:
        """Bring up daemons; under runtime isolation devices init here once.

        Returns the simulated setup cost.
        """
        if self.connected:
            raise ProtocolError(f"agent {self.node.node_id}: already connected")
        self.connected = True
        cost = 0.0
        if self.config.runtime_isolation:
            for daemon in self.daemons:
                cost += daemon.init_cost_ms()
        if self.config.sync_cache:
            capacity = self.config.cache_capacity or 1_000_000
            self.cache = LRUVertexCache(capacity, writeback=True)
        self.total_middleware_ms += cost
        return cost

    def disconnect(self) -> None:
        """Tear the daemons down (devices released)."""
        self._require_connected()
        for daemon in self.daemons:
            daemon.accelerator.shutdown()
        self.connected = False

    def update(self, vertex_ids: np.ndarray, values: np.ndarray,
               algorithm: AlgorithmTemplate,
               direction: str = "download") -> float:
        """Bulk data synchronization with the upper system (§IV-A2).

        The paper's per-iteration call sequence is ``connect() ->
        update() -> {requestX()} -> update() -> disconnect()``: the first
        ``update`` pulls vertex data down into the agent's tables, the
        second pushes results back.  Returns the simulated cost; with the
        cache enabled a download also warms it.
        """
        self._require_connected()
        if direction not in ("download", "upload"):
            raise ProtocolError(
                f"update direction must be download/upload, got "
                f"{direction!r}"
            )
        ids = np.asarray(vertex_ids, dtype=np.int64).ravel()
        runtime = self.node.runtime
        if direction == "download":
            cost = runtime.download_ms_per_entity * ids.size
            if self.cache is not None and ids.size:
                rows = algorithm.gather_values(values, ids)
                self.cache.insert_many(ids, rows)
        else:
            cost = runtime.upload_ms_per_entity * ids.size
            if self.cache is not None:
                self.cache.take_dirty(ids)
        self.total_middleware_ms += cost
        return cost

    def transfer(self, daemon_index: int, region: str, data,
                 nbytes: int = 0) -> None:
        """Place data in a daemon's shared-memory segment (§IV-A2).

        Zero-copy by construction: the object itself is shared through
        the simulated System V segment, so the daemon observes it
        immediately (§II-B).
        """
        self._require_connected()
        if not 0 <= daemon_index < len(self.daemons):
            raise ProtocolError(
                f"agent {self.node.node_id}: no daemon #{daemon_index}"
            )
        self.daemons[daemon_index].segment.put(region, data, nbytes=nbytes)

    def request_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                    weights: np.ndarray, values: np.ndarray,
                    algorithm: AlgorithmTemplate) -> EdgePassResult:
        """MSGGen over the node's active triplets (pipelined edge pass).

        Block-local MSGMerge runs fused with generation on the daemons —
        "MSGMerge delivers the initial messages to corresponding graph
        partitions", which here means the per-block partials the upload
        thread hands back.
        """
        return self.edge_pass(src_ids, dst_ids, weights, values, algorithm)

    def request_merge(self, partials: List[MessageSet],
                      algorithm: AlgorithmTemplate
                      ) -> Tuple[MessageSet, float]:
        """MSGMerge across partials (block/daemon-level combine)."""
        self._require_connected()
        merged = algorithm.combine_many(partials)
        cost = self.node.runtime.apply_ms_per_entity * merged.size
        self.total_middleware_ms += cost
        return merged, cost

    def request_apply(self, values: np.ndarray, merged: MessageSet,
                      algorithm: AlgorithmTemplate
                      ) -> Tuple[np.ndarray, np.ndarray, float]:
        """MSGApply for this node's masters on the fastest daemon.

        Returns ``(new_values, changed_ids, simulated_ms)``; the cost
        covers staging the messages in, the device call, and uploading
        the changed values back.
        """
        self._require_connected()
        daemon = self._fastest_daemon()
        runtime = self.node.runtime
        cost = 0.0
        attempts = 0
        while True:
            cost += daemon.init_cost_ms()
            try:
                new_values, changed, device_ms = daemon.apply_messages(
                    algorithm, values, merged)
                break
            except DeviceFailure as failure:
                attempts += 1
                self.recoveries += 1
                self.retries += 1
                if attempts > self._retry.max_attempts:
                    self._give_up(failure)
                cost += self._retry.backoff_ms(attempts)
        if attempts:
            self.recovered_passes += 1
        cost += device_ms
        cost += runtime.download_ms_per_entity * merged.size
        cost += runtime.upload_ms_per_entity * changed.size
        daemon.release_after_request()
        self.total_middleware_ms += cost
        return new_values, changed, cost

    def note_master_updates(self, values: np.ndarray, changed: np.ndarray,
                            algorithm: AlgorithmTemplate) -> None:
        """Refresh cached rows for this node's updated master vertices.

        Called by the engine after it has restricted an apply result to
        the node's own masters; the rows are held dirty for lazy upload.
        """
        if self.cache is None or changed.size == 0:
            return
        rows = algorithm.gather_values(values, changed)
        self.cache.insert_many(changed, rows, dirty=True)

    def request_scatter(self, affected_edges: int) -> float:
        """GAS scatter pass: activate neighbours of changed vertices.

        Scatter is a pure cost pass (no data result), so a device fault
        simply costs one more initialization.
        """
        self._require_connected()
        daemon = self._fastest_daemon()
        cost = daemon.init_cost_ms() + daemon.scatter_cost_ms(affected_edges)
        daemon.release_after_request()
        self.total_middleware_ms += cost
        return cost

    # -- the pipelined edge pass (§III-A) ------------------------------------------------

    def edge_pass(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                  weights: np.ndarray, values: np.ndarray,
                  algorithm: AlgorithmTemplate) -> EdgePassResult:
        """Process the iteration's triplets through the daemons.

        With ``config.pipeline`` the 3-stage pipeline shuffle runs per
        daemon (Algorithms 1-2 on the simulated scheduler); otherwise the
        naive 5-step sequential flow is timed.  Work is split across
        daemons proportionally to their capacity factors.
        """
        self._require_connected()
        d = int(src_ids.size)
        if d == 0:
            return EdgePassResult(algorithm.empty_messages(), 0.0, 0, 0)

        if self.cache is not None:
            self.cache.tick()
        src_rows = algorithm.gather_values(values, src_ids)

        # Failure recovery (§II-A's transparent hardware management): a
        # device fault, heartbeat verdict, or shm corruption aborts the
        # pass; the agent backs off, respawns the daemons (fresh segment,
        # fresh channels, device re-init), and re-runs.  Work fetched
        # before the fault stays cached, so the retry is cheaper.
        lost_ms = 0.0
        attempts = 0
        while True:
            try:
                (partial, elapsed, total_blocks, breakdown,
                 hits_misses) = self._attempt_pass(
                    src_ids, dst_ids, weights, src_rows, algorithm)
                break
            except (DeviceFailure, FaultError) as failure:
                attempts += 1
                self.recoveries += 1
                self.retries += 1
                if isinstance(failure, DaemonDead):
                    self.heartbeat_verdicts += 1
                lost_ms += getattr(failure, "elapsed_ms", 0.0)
                if attempts > self._retry.max_attempts:
                    self._give_up(failure)
                lost_ms += self._retry.backoff_ms(attempts)
                for daemon in self.daemons:
                    daemon.respawn()
        if attempts:
            self.recovered_passes += 1
        for daemon in self.daemons:
            daemon.note_pass_end()
        elapsed += lost_ms
        if lost_ms:
            breakdown[CAT_INIT] = breakdown.get(CAT_INIT, 0.0) + lost_ms

        if self.config.validate:
            self._validate_partial(src_ids, dst_ids, weights, values,
                                   algorithm, partial)

        # The authoritative message data is the monolithic gen+merge over
        # the agent's triplets.  The blocked pipeline computes the same
        # quantity (asserted above under ``config.validate``) but groups
        # the floating-point reduction by block, and block boundaries move
        # with every timing-adaptive input — cache hit ratios, straggler
        # inflation, daemon shares.  Deriving the returned data from the
        # triplets alone keeps the invariant that those knobs shape cost,
        # never values, exact at the bit level; checkpoint-resume recovery
        # (a fresh agent re-executing a warmed agent's superstep) depends
        # on that.
        partial = algorithm.msg_merge(
            dst_ids, algorithm.msg_gen(src_ids, dst_ids, weights, values))

        result = EdgePassResult(
            partial=partial,
            elapsed_ms=elapsed,
            entities=d,
            blocks=total_blocks,
            breakdown=breakdown,
            cache_hits=hits_misses[0],
            cache_misses=hits_misses[1],
        )
        self.total_middleware_ms += elapsed
        self.total_entities += d
        if d:
            self._last_fetch_ratio = result.cache_misses / d
        return result

    def _attempt_pass(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                      weights: np.ndarray, src_rows: np.ndarray,
                      algorithm: AlgorithmTemplate):
        """One attempt at the (pipelined) pass; raises DeviceFailure (or a
        FaultError) with the simulated time burned so far attached."""
        d = int(src_ids.size)
        shares = self._daemon_shares()
        bounds = np.floor(np.cumsum(shares) * d).astype(np.int64)
        bounds[-1] = d
        sched = BatchedScheduler() if self.config.batch_events else Scheduler()
        monitor: Optional[HeartbeatMonitor] = None
        if self.config.pipeline and self.config.monitor_heartbeats:
            monitor = HeartbeatMonitor(self.config.heartbeat_interval_ms,
                                       self.config.heartbeat_timeout_ms,
                                       detector=self.straggler)
        self._spec_pending = []
        self._abandoned = []
        collectors: List[List[MessageSet]] = []
        hits_misses = [0, 0]
        lo = 0
        total_blocks = 0
        init_ms = 0.0
        for daemon, hi in zip(self.daemons, bounds):
            # the pass touches the daemon's segment; catch corruption
            # before any data is consumed from it
            daemon.verify_segment()
            daemon.heartbeat = monitor
            daemon.pass_idle = False
            hi = int(hi)
            if hi <= lo:
                daemon.pass_idle = True
                collectors.append([])
                continue
            init_ms = max(init_ms, daemon.init_cost_ms())
            blocks = self._build_blocks(
                daemon, algorithm,
                src_ids[lo:hi], dst_ids[lo:hi], weights[lo:hi],
                src_rows[lo:hi], hits_misses)
            total_blocks += len(blocks)
            if monitor is not None and self.config.straggler.enabled \
                    and blocks:
                # per-phase deadline budgets from the Eq. 2 cost model:
                # the worst block's expected stage time with speculative
                # headroom, floored at the flat timeout so budgets can
                # only widen the allowed silence, never cause a false
                # DaemonDead
                coeffs = self.coefficients_for(daemon)
                b = max(bl.num_entities for bl in blocks)
                h = self.config.straggler.speculation_headroom
                t = self.config.heartbeat_timeout_ms
                monitor.set_budgets(daemon.daemon_id, {
                    "download": max(t, coeffs.t_n(b) * h),
                    "compute": max(t, coeffs.t_c(b) * h),
                    "upload": max(t, coeffs.t_u(b) * h),
                })
            collector: List[MessageSet] = []
            collectors.append(collector)
            if self.config.pipeline:
                if monitor is not None:
                    monitor.register(daemon.daemon_id, sched.clock.now)
                sched.spawn(daemon.iteration_process(algorithm),
                            name=f"daemon{daemon.daemon_id}", daemon=True)
                sched.spawn(
                    self._pipeline_process(daemon, algorithm, blocks,
                                           collector),
                    name=f"agent{self.node.node_id}->d{daemon.daemon_id}")
            else:
                sched.spawn(
                    self._sequential_process(daemon, algorithm, blocks,
                                             collector),
                    name=f"agent{self.node.node_id}-seq")
            lo = hi
        if monitor is not None and monitor.tracked:
            sched.spawn(monitor.watchdog(),
                        name=f"watchdog{self.node.node_id}", daemon=True)
        if init_ms:
            # devices (re-)initialize before the pass; concurrent daemons
            # overlap, so charge the slowest.
            sched.time_by_category[CAT_INIT] = (
                sched.time_by_category.get(CAT_INIT, 0.0) + init_ms)
        try:
            elapsed = sched.run() + init_ms
        except (DeviceFailure, FaultError) as failure:
            failure.elapsed_ms = sched.clock.now + init_ms
            raise
        finally:
            self._settle_speculation(sched.clock.now)
            self.sched_events += sched.events_popped
            self.sched_batches += sched.batches
            if sched.max_batch > self.sched_max_batch:
                self.sched_max_batch = sched.max_batch
            if sched.heap_peak > self.sched_heap_peak:
                self.sched_heap_peak = sched.heap_peak

        partial = algorithm.combine_many(
            [block_partial for collector in collectors
             for block_partial in collector])
        for daemon in self.daemons:
            daemon.release_after_request()

        breakdown = dict(sched.time_by_category)
        return partial, elapsed, total_blocks, breakdown, hits_misses

    # -- internals -----------------------------------------------------------------

    def _validate_partial(self, src_ids, dst_ids, weights, values,
                          algorithm: AlgorithmTemplate,
                          partial: MessageSet) -> None:
        """Debug-mode invariant (``MiddlewareConfig.validate``): the
        blocked, pipelined, multi-daemon pass must equal a monolithic
        gen+merge over the same triplets.  Costs real wall time; tests
        and debugging only."""
        msgs = algorithm.msg_gen(src_ids, dst_ids, weights, values)
        expected = algorithm.msg_merge(dst_ids, msgs)

        def canonical(ms: MessageSet) -> Tuple[np.ndarray, np.ndarray]:
            if ms.ids.size == 0:
                return ms.ids, np.empty((0, 1))
            data = np.round(np.atleast_2d(ms.data), 9)
            if data.shape[0] != ms.ids.size:  # width-1 row vector
                data = data.reshape(ms.ids.size, -1)
            order = np.lexsort(tuple(data.T[::-1]) + (ms.ids,))
            return ms.ids[order], data[order]

        got_ids, got_data = canonical(partial)
        want_ids, want_data = canonical(expected)
        same = (got_ids.shape == want_ids.shape
                and got_data.shape == want_data.shape
                and bool(np.array_equal(got_ids, want_ids))
                and bool(np.array_equal(got_data, want_data)))
        if not same:
            raise MiddlewareError(
                f"agent {self.node.node_id}: pipelined partial diverges "
                f"from the monolithic result ({partial.size} vs "
                f"{expected.size} entries)"
            )

    def _require_connected(self) -> None:
        if not self.connected:
            raise ProtocolError(
                f"agent {self.node.node_id}: call connect() first"
            )

    def _give_up(self, failure: Exception) -> None:
        """Retry budget exhausted: degrade to the host path, or re-raise.

        With ``config.degrade_to_host`` the node's accelerators are
        written off for the rest of the job and the engine is told to
        recover (checkpoint rollback + CPU baseline path for this node)
        via :class:`~repro.errors.AcceleratorsExhausted`.
        """
        if self.config.degrade_to_host:
            self.degraded = True
            raise AcceleratorsExhausted(
                f"agent {self.node.node_id}: accelerators exhausted after "
                f"{self._retry.max_attempts} retries ({failure})",
                node_id=self.node.node_id,
            ) from failure
        raise failure

    def flush_cache(self) -> None:
        """Drop all cached vertex state (checkpoint rollback support).

        After a rollback the values the cache was warmed with never
        happened; the next pass re-downloads on demand.
        """
        if self.config.sync_cache:
            capacity = self.config.cache_capacity or 1_000_000
            self.cache = LRUVertexCache(capacity, writeback=True)
        self._last_fetch_ratio = 1.0

    def _fastest_daemon(self) -> Daemon:
        """The daemon single-device requests (apply, scatter) run on.

        Nominally the lowest per-entity model time; with online
        re-estimation the model time is discounted by the observed
        compute inflation, steering requests off a gray-failed device
        (healthy daemons observe exactly 1.0, so fault-free selection
        is unchanged — ties keep breaking toward the lowest id).
        """
        def effective(d: Daemon):
            per = d.accelerator.model.per_entity_ms
            if (self.straggler is not None
                    and self.config.straggler.reestimate):
                per *= max(1.0, self.straggler.inflation(d.daemon_id,
                                                         "compute"))
            return (per, d.daemon_id)
        return min(self.daemons, key=effective)

    def _daemon_shares(self) -> np.ndarray:
        """Per-daemon work split, Lemma 2 applied inside the node.

        Nominally proportional to capacity factors.  With online
        re-estimation, each daemon's capacity is discounted by its
        observed compute inflation (EWMA of observed/expected) — a
        gray-failed daemon running 4x slow gets ~1/4 of its nominal
        share next pass.  Healthy daemons observe inflation exactly
        1.0, so the fault-free split is untouched.
        """
        caps = np.array([d.accelerator.model.capacity_factor()
                         for d in self.daemons])
        if (self.straggler is not None
                and self.config.straggler.reestimate):
            infl = np.array([
                max(1.0, self.straggler.inflation(d.daemon_id, "compute"))
                for d in self.daemons])
            caps = caps / infl
        return caps / caps.sum()

    def coefficients_for(self, daemon: Daemon) -> PipelineCoefficients:
        """Effective Eq. 2 coefficients of this agent-daemon pair.

        The download slope adapts to the observed cache hit rate (a hit
        costs ``LOCAL_ACCESS_FACTOR * k1``) and the upload slope to lazy
        uploading, so the Lemma-1 block-size choice reflects what the
        stages will actually cost — the paper's "self-adaptive to the
        workloads" behaviour.  Without caching this is the raw model.
        """
        runtime = self.node.runtime
        k1 = runtime.download_ms_per_entity
        k3 = runtime.upload_ms_per_entity
        k1 = k1 * self._last_fetch_ratio + LOCAL_ACCESS_FACTOR * k1
        if self.cache is not None and self.config.lazy_upload:
            k3 *= LOCAL_ACCESS_FACTOR
        return PipelineCoefficients(
            k1=k1,
            k2=daemon.accelerator.model.per_entity_ms,
            k3=k3,
            a=daemon.accelerator.model.call_ms,
        )

    def _block_size_for(self, daemon: Daemon, d: int) -> int:
        if self.config.block_size is not None:
            return self.config.block_size
        return self.coefficients_for(daemon).choose_block_size(d)

    def _build_blocks(self, daemon: Daemon, algorithm: AlgorithmTemplate,
                      src_ids: np.ndarray, dst_ids: np.ndarray,
                      weights: np.ndarray, src_rows: np.ndarray,
                      hits_misses: List[int]) -> List[TripletBlock]:
        """Slice triplets into blocks, tagging cache-miss fetch volumes."""
        block_size = self._block_size_for(daemon, int(src_ids.size))
        blocks = list(build_blocks(src_ids, dst_ids, weights, src_rows,
                                   block_size))
        if self.cache is None:
            # no cache: each block still builds its paired vertex block,
            # fetching each distinct source vertex once per block (§II-B)
            for block in blocks:
                uniques = int(np.unique(block.src_ids).size)
                block.fetched_entities = uniques
                hits_misses[1] += uniques
            return blocks
        for block in blocks:
            in_cache = self.cache.contains_many(block.src_ids)
            self.cache.touch(np.unique(block.src_ids[in_cache]))
            miss_ids, first_idx = np.unique(block.src_ids[~in_cache],
                                            return_index=True)
            block.fetched_entities = int(miss_ids.size)
            hits_misses[0] += int(in_cache.sum())
            hits_misses[1] += int(miss_ids.size)
            miss_rows = block.src_values[~in_cache][first_idx]
            self.cache.insert_many(miss_ids, miss_rows)
        return blocks

    def refresh_cache(self, vertex_ids: np.ndarray, values: np.ndarray,
                      algorithm: AlgorithmTemplate) -> None:
        """Refresh cached rows with values delivered at synchronization.

        Algorithm 3's last step (``s.Update(Fetch(gdq, s_q))``): the
        global data queue hands each agent the queried vertices' new
        values, so they are warm in the cache for the next iteration —
        no re-download needed.  Only already-cached vertices refresh.
        """
        if self.cache is None:
            return
        ids = np.asarray(vertex_ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return
        ids = ids[self.cache.contains_many(ids)]
        if ids.size == 0:
            return
        rows = algorithm.gather_values(values, ids)
        self.cache.insert_many(ids, rows, dirty=False)

    def settle_dirty(self) -> None:
        """Clean the lazy-upload buffer after a global synchronization.

        The sync collective reconciles every changed master with the
        upper system's tables (the engine charges its cost), so the rows
        the cache held for lazy upload are no longer pending; they stay
        cached, clean.
        """
        if self.cache is not None:
            self.cache.clear_dirty()

    def invalidate_cache(self, vertex_ids: np.ndarray) -> None:
        """Drop cache entries made stale by foreign updates."""
        if self.cache is None:
            return
        self.cache.invalidate_many(np.asarray(vertex_ids).ravel())

    def _download_ms(self, block: TripletBlock,
                     daemon: Optional[Daemon] = None) -> float:
        """Download stage cost: one fetch per distinct missing source
        vertex (the paper's vertex block) plus a cheap local join per
        triplet.  With ``daemon`` given, an armed ``shm_slow`` gray
        fault inflates the pair's transfer cost."""
        k1 = self.node.runtime.download_ms_per_entity
        cost = (k1 * block.fetched_entities
                + k1 * LOCAL_ACCESS_FACTOR * block.num_entities)
        if daemon is not None:
            cost *= daemon.transfer_inflation
        return cost

    def _upload_ms(self, result: MessageSet,
                   daemon: Optional[Daemon] = None) -> float:
        k3 = self.node.runtime.upload_ms_per_entity
        if self.cache is not None and self.config.lazy_upload:
            # results land in the agent cache; the real upload happens
            # lazily at synchronization time for queried vertices only.
            cost = k3 * LOCAL_ACCESS_FACTOR * result.size
        else:
            cost = k3 * result.size
        if daemon is not None:
            cost *= daemon.transfer_inflation
        return cost

    def _observe_transfer(self, daemon: Daemon, entities: int,
                          observed_ms: float, expected_ms: float) -> None:
        """Feed one transfer duration into the straggler detector."""
        if self.straggler is not None and entities > 0:
            self.straggler.observe(daemon.daemon_id, "transfer",
                                   entities, observed_ms, expected_ms)

    # -- Algorithm 2 (agent side of the pipeline) ------------------------------------------

    def _beat(self, daemon: Daemon, busy_ms: float = 0.0,
              phase: Optional[str] = None) -> Generator:
        """Agent-side heartbeat for the pair's monitor entry.

        ``busy_ms > 0`` declares an upcoming leased wait (download /
        upload); ``phase`` names the deadline budget it charges against.
        """
        if daemon.heartbeat is not None:
            now = yield Now()
            daemon.heartbeat.beat(daemon.daemon_id, now,
                                  busy_until=(now + busy_ms) if busy_ms
                                  else None,
                                  phase=phase)

    def _pipeline_process(self, daemon: Daemon,
                          algorithm: AlgorithmTemplate,
                          blocks: List[TripletBlock],
                          collector: List[MessageSet]) -> Generator:
        areas = daemon.areas
        block_iter = iter(blocks)
        first = next(block_iter, None)
        if first is None:
            daemon.pass_idle = True
            return
        cost = self._download_ms(first, daemon)
        yield from self._beat(daemon, busy_ms=cost, phase="download")
        yield Sleep(cost, CAT_DOWNLOAD)
        self._observe_transfer(daemon, first.num_entities, cost,
                               self._download_ms(first))
        areas.n.block = first
        yield Send(daemon.to_daemon, MSG_EXCHANGE_FINISHED)
        upload_h = download_h = None
        expect_rotate = True
        outcome: Optional[dict] = None
        compute_start = 0.0
        while True:
            msg = yield Recv(daemon.to_agent)
            yield from self._beat(daemon)
            speculated = isinstance(msg, tuple) and msg[0] == MSG_SPECULATED
            if not speculated and (msg == MSG_ROTATE_FINISHED) != \
                    expect_rotate:
                # protocol desync: a control message was lost in flight.
                # Acting on the out-of-order message would silently skip
                # blocks, so the agent parks without beating; the
                # watchdog converts the silence into a DaemonDead
                # verdict and the pass is retried from scratch.
                yield Recv(Channel(
                    f"agent{self.node.node_id}-desync{daemon.daemon_id}"))
            if speculated:
                yield from self._adopt_speculation(
                    daemon, algorithm, msg, compute_start, block_iter,
                    collector, upload_h, download_h)
                return
            if msg == MSG_ROTATE_FINISHED:
                expect_rotate = False
                compute_start = yield Now()
                if self._speculation_armed(daemon):
                    # the pair is a flagged straggler with a block on the
                    # device: hedge it on a watcher that re-issues the
                    # same block to an idle daemon if the budget expires
                    outcome = {"done": False}
                    yield Spawn(
                        self._speculation_watcher(
                            daemon, algorithm, areas.c.block, outcome),
                        name=f"Speculate.d{daemon.daemon_id}", daemon=True)
                upload_h = yield Spawn(
                    self._upload_thread(daemon, algorithm, collector),
                    name="Thread.Upload", daemon=False)
                download_h = yield Spawn(
                    self._download_thread(daemon, block_iter),
                    name="Thread.Download", daemon=False)
            elif msg == MSG_COMPUTE_FINISHED:
                expect_rotate = True
                if outcome is not None:
                    outcome["done"] = True  # the primary won this block
                    outcome = None
                yield Join(upload_h)
                yield Join(download_h)
                yield from self._beat(daemon)
                yield Send(daemon.to_daemon, MSG_EXCHANGE_FINISHED)
            elif msg == MSG_COMPUTE_ALL_FINISHED:
                yield Join(upload_h)
                yield Join(download_h)
                # the pair finished cleanly: release it from liveness
                # tracking (other pairs may legitimately run much
                # longer) and offer it as a speculation backup
                if daemon.heartbeat is not None:
                    daemon.heartbeat.forget(daemon.daemon_id)
                daemon.pass_idle = True
                return
            else:
                raise ProtocolError(
                    f"agent {self.node.node_id}: unexpected message {msg!r}"
                )

    def _upload_thread(self, daemon: Daemon, algorithm: AlgorithmTemplate,
                       collector: List[MessageSet]) -> Generator:
        area = daemon.areas.u
        result = area.result
        if result is None:
            return
        cost = self._upload_ms(result, daemon)
        yield from self._beat(daemon, busy_ms=cost, phase="upload")
        yield Sleep(cost, CAT_UPLOAD)
        self._observe_transfer(daemon, result.size, cost,
                               self._upload_ms(result))
        collector.append(result)
        area.clear()

    def _download_thread(self, daemon: Daemon,
                         block_iter: Iterator[TripletBlock]) -> Generator:
        block = next(block_iter, None)
        if block is None:
            return
        cost = self._download_ms(block, daemon)
        yield from self._beat(daemon, busy_ms=cost, phase="download")
        yield Sleep(cost, CAT_DOWNLOAD)
        self._observe_transfer(daemon, block.num_entities, cost,
                               self._download_ms(block))
        daemon.areas.n.block = block

    # -- speculative block re-execution (gray-failure response) ---------------------------------

    def _speculation_armed(self, daemon: Daemon) -> bool:
        """Hedge this pair's next block?  Only when the detector has
        flagged it and a potential backup exists on this agent."""
        scfg = self.config.straggler
        return (scfg.enabled and scfg.speculate
                and self.straggler is not None
                and self.straggler.is_straggler(daemon.daemon_id)
                and any(d is not daemon for d in self.daemons))

    def _fastest_idle_daemon(self, exclude: Daemon) -> Optional[Daemon]:
        """The backup candidate: fastest unflagged daemon that already
        finished (or never had) work this pass.  Deterministic tie-break
        by daemon id."""
        candidates = [
            d for d in self.daemons
            if d is not exclude and d.pass_idle
            and not (self.straggler is not None
                     and self.straggler.is_straggler(d.daemon_id))]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda d: (d.accelerator.model.per_entity_ms,
                                  d.daemon_id))

    def _speculation_watcher(self, daemon: Daemon,
                             algorithm: AlgorithmTemplate,
                             block: Optional[TripletBlock],
                             outcome: dict) -> Generator:
        """Hedge one block of a flagged straggler (Spark-style
        speculative re-execution, first finisher wins).

        Sleeps out the block's cost-model budget; if the primary has not
        reported by then, the same block is re-issued to the fastest
        idle daemon.  Whichever copy finishes first wins — the loser's
        device time is charged to ``speculative_wasted_ms``.  Runs as a
        scheduler daemon: an in-flight backup never extends the pass.
        """
        if block is None:
            return
        coeffs = self.coefficients_for(daemon)
        budget = (coeffs.t_c(block.num_entities)
                  * self.config.straggler.speculation_headroom)
        yield Sleep(budget)
        backup = None
        while True:
            if outcome["done"]:
                return  # the primary made it within budget
            backup = self._fastest_idle_daemon(exclude=daemon)
            if backup is not None:
                break
            yield Sleep(self.config.heartbeat_interval_ms)
        backup.pass_idle = False
        result, duration = backup.compute_block(algorithm, block)
        start = yield Now()
        entry = {"resolved": False, "duration": duration, "start": start}
        self._spec_pending.append(entry)
        yield Sleep(duration, CAT_COMPUTE)
        entry["resolved"] = True
        if outcome["done"]:
            # the primary finished while the backup was mid-kernel: the
            # backup's whole device time was wasted
            if self.straggler is not None:
                self.straggler.record_loss(duration)
            backup.pass_idle = True
            return
        outcome["done"] = True
        yield Send(daemon.to_agent, (MSG_SPECULATED, result, backup,
                                     duration))

    def _adopt_speculation(self, daemon: Daemon,
                           algorithm: AlgorithmTemplate, msg: tuple,
                           compute_start: float,
                           block_iter: Iterator[TripletBlock],
                           collector: List[MessageSet],
                           upload_h, download_h) -> Generator:
        """A backup beat the straggler to its block: adopt the backup's
        result, abandon the primary, and drain the remaining blocks on
        the backup."""
        _, result, backup, _duration = msg
        now = yield Now()
        if self.straggler is not None:
            # what the abandoned primary burned before being overtaken
            self.straggler.record_win(now - compute_start)
        if daemon.heartbeat is not None:
            daemon.heartbeat.forget(daemon.daemon_id)
        # the primary's in-flight compute is void; its stale
        # ComputeFinished is flushed by reset_protocol() at pass end
        self._abandoned.append(daemon)
        if upload_h is not None:
            yield Join(upload_h)
        if download_h is not None:
            yield Join(download_h)
        cost = self._upload_ms(result, backup)
        yield Sleep(cost, CAT_UPLOAD)
        self._observe_transfer(backup, result.size, cost,
                               self._upload_ms(result))
        collector.append(result)
        # the download thread already paid for the n-area block (if any);
        # the backup picks it up from shared memory for free
        yield from self._drain_blocks(backup, algorithm,
                                      daemon.areas.n.block, block_iter,
                                      collector)

    def _drain_blocks(self, backup: Daemon, algorithm: AlgorithmTemplate,
                      first_block: Optional[TripletBlock],
                      block_iter: Iterator[TripletBlock],
                      collector: List[MessageSet]) -> Generator:
        """Finish the abandoned pair's remaining blocks on the backup.

        Sequential (the backup's own pipeline already ran), but a healthy
        device beats a gray-failed one's inflated pace.  The first block
        skips the download charge when the straggler's download thread
        already staged it.
        """
        block = first_block
        paid_download = first_block is not None
        while block is not None:
            if not paid_download:
                cost = self._download_ms(block, backup)
                yield Sleep(cost, CAT_DOWNLOAD)
                self._observe_transfer(backup, block.num_entities, cost,
                                       self._download_ms(block))
            result, duration = backup.compute_block(algorithm, block)
            yield Sleep(duration, CAT_COMPUTE)
            cost = self._upload_ms(result, backup)
            yield Sleep(cost, CAT_UPLOAD)
            self._observe_transfer(backup, result.size, cost,
                                   self._upload_ms(result))
            collector.append(result)
            block = next(block_iter, None)
            paid_download = False
        backup.pass_idle = True

    def _settle_speculation(self, now: float) -> None:
        """End-of-pass sweep: backups still mid-kernel when the pass
        ended are charged as losses; abandoned primaries get a clean
        protocol state for the next pass."""
        for entry in self._spec_pending:
            if not entry["resolved"] and self.straggler is not None:
                self.straggler.record_loss(
                    min(entry["duration"], now - entry["start"]))
        self._spec_pending = []
        for daemon in self._abandoned:
            daemon.reset_protocol()
        self._abandoned = []

    # -- the 5-step sequential flow (pipeline disabled) -----------------------------------------

    def _sequential_process(self, daemon: Daemon,
                            algorithm: AlgorithmTemplate,
                            blocks: List[TripletBlock],
                            collector: List[MessageSet]) -> Generator:
        """Download -> copy in -> compute -> copy out -> upload, per block.

        The two extra copies are the agent<->daemon transfers the shared
        memory design eliminates (§III-A2); nothing overlaps.
        """
        runtime = self.node.runtime
        copy_in = runtime.download_ms_per_entity * NAIVE_COPY_FACTOR
        copy_out = runtime.upload_ms_per_entity * NAIVE_COPY_FACTOR
        for block in blocks:
            down = self._download_ms(block, daemon)
            yield Sleep(down, CAT_DOWNLOAD)
            self._observe_transfer(daemon, block.num_entities, down,
                                   self._download_ms(block))
            yield Sleep(copy_in * block.num_entities, CAT_DOWNLOAD)
            result, duration = daemon.compute_block(algorithm, block)
            yield Sleep(duration, CAT_COMPUTE)
            yield Sleep(copy_out * result.size, CAT_UPLOAD)
            up = self._upload_ms(result, daemon)
            yield Sleep(up, CAT_UPLOAD)
            self._observe_transfer(daemon, result.size, up,
                                   self._upload_ms(result))
            collector.append(result)
