"""Triplet blocks and the pipeline-shuffle buffer areas (§II-B, §III-A).

The middleware's unit of work is the **edge triplet** — "an edge and its
source and destination vertices" — grouped into fixed-size blocks.  The
pipeline keeps three equal memory areas (*n*, *c*, *u* — new, computing,
uploading) and rotates *pointers* between them instead of copying data;
:class:`AreaSet` implements that rotation and the tests verify no copy
ever happens (object identity is preserved across rotations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..errors import MiddlewareError
from .template import MessageSet


@dataclass
class TripletBlock:
    """A fixed-size batch of edge triplets, ready for a daemon.

    ``src_values`` carries the source-vertex attributes joined in by the
    agent (the "vertex block" paired with the edge block); destination
    attributes are only needed at apply time and travel with the merged
    messages instead.
    """

    index: int                   # position within the iteration's blocks
    src_ids: np.ndarray
    dst_ids: np.ndarray
    weights: np.ndarray
    src_values: np.ndarray       # rows aligned with src_ids
    fetched_entities: int = 0    # unique src vertices fetched (cache misses)

    @property
    def num_entities(self) -> int:
        return int(self.src_ids.size)

    def __post_init__(self) -> None:
        n = self.src_ids.size
        if self.dst_ids.size != n or self.weights.size != n:
            raise MiddlewareError(
                f"block {self.index}: ragged triplet arrays "
                f"({n}, {self.dst_ids.size}, {self.weights.size})"
            )
        if self.src_values.shape[0] != n:
            raise MiddlewareError(
                f"block {self.index}: {self.src_values.shape[0]} value rows "
                f"for {n} triplets"
            )


class BlockArea:
    """One of the three pipeline memory chunks (n-, c-, or u-block slot).

    Lives in the daemon's shared-memory segment; holds at most one
    :class:`TripletBlock` going *in* and one :class:`MessageSet` result
    coming *out*.
    """

    __slots__ = ("label", "block", "result")

    def __init__(self, label: str) -> None:
        self.label = label
        self.block: Optional[TripletBlock] = None
        self.result: Optional[MessageSet] = None

    @property
    def empty(self) -> bool:
        return self.block is None and self.result is None

    def clear(self) -> None:
        self.block = None
        self.result = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "empty" if self.empty else (
            f"block#{self.block.index}" if self.block is not None
            else "result")
        return f"BlockArea({self.label!r}, {state})"


class AreaSet:
    """The rotating n/c/u pointer triple of the pipeline shuffle.

    ``rotate()`` performs the paper's pointer rotation n → c → u → n:
    the freshly downloaded block becomes the computing block, the computed
    block becomes the uploading block, and the drained uploading area is
    recycled for the next download.  No data moves.
    """

    def __init__(self) -> None:
        self._areas = [BlockArea("area0"), BlockArea("area1"),
                       BlockArea("area2")]
        # role indices into _areas
        self._n, self._c, self._u = 0, 1, 2
        self.rotations = 0

    @property
    def n(self) -> BlockArea:
        """Area receiving new data from the upper system."""
        return self._areas[self._n]

    @property
    def c(self) -> BlockArea:
        """Area the daemon is computing on."""
        return self._areas[self._c]

    @property
    def u(self) -> BlockArea:
        """Area being uploaded back to the upper system."""
        return self._areas[self._u]

    def rotate(self) -> None:
        """Pointer rotation n → c → u → n (in-situ, no copies)."""
        self._n, self._c, self._u = self._u, self._n, self._c
        self.rotations += 1

    def areas(self) -> List[BlockArea]:
        return list(self._areas)


def build_blocks(src_ids: np.ndarray, dst_ids: np.ndarray,
                 weights: np.ndarray, src_values: np.ndarray,
                 block_size: int) -> Iterator[TripletBlock]:
    """Split an iteration's triplets into fixed-size blocks.

    The agent constructs edge blocks by walking the vertex-edge mapping
    table; here the triplets arrive pre-joined (``src_values`` row per
    edge) and are sliced without copying (numpy views).
    """
    if block_size < 1:
        raise MiddlewareError(f"block_size must be >= 1, got {block_size}")
    total = src_ids.size
    index = 0
    for lo in range(0, total, block_size):
        hi = min(lo + block_size, total)
        yield TripletBlock(
            index=index,
            src_ids=src_ids[lo:hi],
            dst_ids=dst_ids[lo:hi],
            weights=weights[lo:hi],
            src_values=src_values[lo:hi],
        )
        index += 1


@dataclass
class VertexEdgeMap:
    """The agent's vertex-edge mapping table (§II-B).

    Maps a node's local edge set into CSR-like form grouped by source so
    the agent can "select a vertex and retrieve its outer edges" when
    packaging blocks, and can find which local edges are affected by an
    updated vertex.
    """

    order: np.ndarray      # permutation sorting local edges by src
    src_sorted: np.ndarray
    starts: np.ndarray     # unique sources
    offsets: np.ndarray    # CSR offsets into order, len(starts)+1

    @classmethod
    def build(cls, src_ids: np.ndarray) -> "VertexEdgeMap":
        order = np.argsort(src_ids, kind="stable")
        src_sorted = src_ids[order]
        starts, first = np.unique(src_sorted, return_index=True)
        offsets = np.concatenate([first, [src_sorted.size]])
        return cls(order, src_sorted, starts, offsets)

    def edges_of(self, vertex: int) -> np.ndarray:
        """Local edge positions whose source is ``vertex``."""
        i = np.searchsorted(self.starts, vertex)
        if i >= self.starts.size or self.starts[i] != vertex:
            return np.empty(0, dtype=np.int64)
        return self.order[self.offsets[i]:self.offsets[i + 1]]

    def sources(self) -> np.ndarray:
        return self.starts
