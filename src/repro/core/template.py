"""The GX-Plug algorithm template (§IV-A1).

The paper's daemons hold an iteration-based algorithm template with three
APIs — ``MSGGen()``, ``MSGMerge()`` and ``MSGApply()`` — that algorithm
engineers implement; the middleware handles everything else.  Different
call orders yield different computation models (§IV-B2):

* BSP (GraphX):      Gen -> Merge -> Apply
* GAS (PowerGraph):  Merge -> Apply -> Gen

This module defines the Python equivalent: :class:`AlgorithmTemplate`
with :meth:`msg_gen`, :meth:`msg_merge` and :meth:`msg_apply`, operating
on numpy edge/vertex arrays.  Message sets (:class:`MessageSet`) are the
associative intermediate exchanged between blocks, daemons and nodes;
associativity is what lets the middleware merge partial results computed
anywhere in any order — a property the test suite checks for every
algorithm.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graph import Graph


@dataclass
class MessageSet:
    """A merged set of messages addressed to vertices.

    ``ids`` are destination vertex ids (unique unless the algorithm's
    merge key is composite, e.g. label-propagation's (vertex, label)
    pairs); ``data`` holds one row of message payload per id.  Empty
    message sets use zero-length arrays.
    """

    ids: np.ndarray
    data: np.ndarray

    @classmethod
    def empty(cls, payload_width: int = 1) -> "MessageSet":
        return cls(np.empty(0, dtype=np.int64),
                   np.empty((0, payload_width), dtype=np.float64))

    @property
    def size(self) -> int:
        return int(self.ids.size)

    def __post_init__(self) -> None:
        if self.ids.shape[0] != self.data.shape[0]:
            raise AlgorithmError(
                f"MessageSet ids/data mismatch: {self.ids.shape[0]} vs "
                f"{self.data.shape[0]}"
            )


@dataclass
class AlgorithmState:
    """Vertex values plus the active frontier of the current iteration."""

    values: np.ndarray       # shape (n,) or (n, k)
    active: np.ndarray      # bool mask, shape (n,)

    def active_count(self) -> int:
        return int(self.active.sum())


class AlgorithmTemplate(ABC):
    """Base class for iterative graph algorithms on the GX-Plug template.

    Subclasses implement the three paper APIs plus initialization.  All
    array arguments are numpy; implementations must be pure (no hidden
    state between calls) because blocks may be processed in any order by
    the pipeline.
    """

    #: Human-readable algorithm name used in reports and benches.
    name: str = "abstract"

    #: Iterations cap when the algorithm does not converge on its own
    #: (the paper caps LP at 15 "to avoid unlimited computation").
    default_max_iterations: int = 100

    #: Monotone *and replay-safe* algorithms (idempotent semirings:
    #: min-plus SSSP/BFS/CC, max-min widest path, bitwise-OR reach)
    #: tolerate applying or regenerating message subsets in any order
    #: without changing the fixed point.  Only these can use
    #: synchronization skipping's combined local iterations (§III-B3):
    #: a node may keep iterating on its own partition and defer
    #: cross-partition messages to the next global sync.  Sum/vote/count
    #: algorithms (PageRank, LP, k-core) need each message applied
    #: exactly once per superstep, so they use the strict detector.
    monotone: bool = False

    #: Algorithms whose messages are *events* (sent exactly once per
    #: state change, e.g. k-core removal notifications) must run
    #: frontier-driven even on engines that normally materialize the
    #: full triplet view: re-scanning all edges would replay the events.
    requires_frontier_scan: bool = False

    #: Warm-start policy after a graph mutation (see
    #: :func:`repro.graph.mutations.plan_warm_start`): ``"frontier"``
    #: for monotone algorithms that re-converge from the old fixpoint
    #: plus a dirty frontier under growing mutations; ``"fixpoint"``
    #: for contractions (PageRank) that reach the same bitwise
    #: stationary point from any seed; ``None`` (default) means only a
    #: cold recompute is provably bit-identical.
    incremental: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    @abstractmethod
    def init_state(self, graph: Graph, **params) -> AlgorithmState:
        """Initial vertex values and active mask for ``graph``."""

    # -- the three paper APIs ---------------------------------------------------

    @abstractmethod
    def msg_gen(self, src_ids: np.ndarray, dst_ids: np.ndarray,
                weights: np.ndarray, values: np.ndarray) -> np.ndarray:
        """MSGGen: per-edge message payloads (one row per edge).

        Computes "the initial results with vertex and edge blocks and
        transform[s] them into initial messages".
        """

    @abstractmethod
    def msg_merge(self, dst_ids: np.ndarray,
                  messages: np.ndarray) -> MessageSet:
        """MSGMerge: combine raw per-edge messages into a message set."""

    @abstractmethod
    def combine(self, a: MessageSet, b: MessageSet) -> MessageSet:
        """Associatively merge two message sets (cross-block/cross-node)."""

    #: Classes whose :meth:`combine` is exactly "empty is identity;
    #: otherwise concatenate ids/data and msg_merge" set this True *in
    #: the same class body* — :meth:`combine_many` then merges any number
    #: of parts in a single msg_merge call.  Because msg_merge
    #: accumulates messages in element order, the one-shot merge is
    #: bit-identical to the pairwise left-to-right fold (each partial
    #: result is a prefix of the concatenated element sequence).
    concat_combine: bool = False

    def _combine_is_concat(self) -> bool:
        # the fast path is only safe when the *same* class that declared
        # concat_combine provides combine — a subclass overriding
        # combine (however strangely) must get the faithful fold.
        for klass in type(self).__mro__:
            if "combine" in vars(klass):
                return bool(vars(klass).get("concat_combine", False))
        return False

    def combine_many(self, parts: Sequence[MessageSet]) -> MessageSet:
        """Merge many message sets at once (segment-reduction point).

        Bit-identical to folding :meth:`combine` left to right over
        ``parts`` — the contract every caller relies on.  Algorithms
        declaring :attr:`concat_combine` merge all parts in one
        msg_merge over the concatenated messages; anything else runs
        the fold.
        """
        if self._combine_is_concat():
            live = [p for p in parts if p.size]
            if not live:
                return self.empty_messages()
            if len(live) == 1:
                return live[0]
            return self.msg_merge(
                np.concatenate([p.ids for p in live]),
                np.concatenate([p.data for p in live]))
        merged = self.empty_messages()
        for p in parts:
            merged = self.combine(merged, p)
        return merged

    @abstractmethod
    def msg_apply(self, values: np.ndarray, merged: MessageSet
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """MSGApply: fold messages into vertex values.

        Returns ``(new_values, changed_vertex_ids)``; ``new_values`` must
        be a fresh array (callers keep the old one for delta bookkeeping).
        """

    # -- block-local variants (used by daemons) -----------------------------------
    #
    # Daemons never see the full vertex table: the agent joins the needed
    # source-vertex attributes into the block's paired *vertex block*
    # (§II-B).  ``gather_values`` extracts those per-vertex rows and
    # ``msg_gen_local`` generates messages from them; the default
    # ``msg_gen`` is equivalent to ``msg_gen_local(gather_values(...))``,
    # which the property tests verify for every algorithm.

    def gather_values(self, values: np.ndarray,
                      ids: np.ndarray) -> np.ndarray:
        """Vertex-block rows for the given vertex ids (2-D, one row/id)."""
        rows = values[ids]
        if rows.ndim == 1:
            rows = rows[:, None]
        return rows

    def msg_gen_local(self, src_rows: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
        """MSGGen from pre-gathered source rows (daemon-side form).

        Default: algorithms whose messages depend only on the source value
        and the edge weight can usually override this directly; the base
        implementation raises so mismatches are caught early.
        """
        raise AlgorithmError(
            f"{type(self).__name__} does not implement msg_gen_local"
        )

    # -- iteration control ---------------------------------------------------------

    def next_active(self, graph: Graph, changed_ids: np.ndarray,
                    num_vertices: int) -> np.ndarray:
        """Frontier for the next iteration (default: changed vertices)."""
        active = np.zeros(num_vertices, dtype=bool)
        active[changed_ids] = True
        return active

    def is_converged(self, changed_count: int, iteration: int) -> bool:
        """Stop when an iteration changes nothing (frontier algorithms)."""
        return changed_count == 0

    # -- helpers -------------------------------------------------------------------

    def payload_width(self) -> int:
        """Columns in a message payload row (for empty-set construction)."""
        return 1

    def empty_messages(self) -> MessageSet:
        return MessageSet.empty(self.payload_width())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
