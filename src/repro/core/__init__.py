"""GX-Plug middleware core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.middleware.GXPlug` — the middleware itself;
* :class:`~repro.core.config.MiddlewareConfig` — optimization toggles;
* :class:`~repro.core.template.AlgorithmTemplate` — the MSGGen/MSGMerge/
  MSGApply programming template;
* the optimization machinery: pipeline shuffle (§III-A), synchronization
  caching & skipping (§III-B), workload balancing (§III-C).
"""

from .agent import Agent, EdgePassResult
from .balance import (
    accelerators_for_load,
    balancing_factors,
    cluster_coefficients,
    degraded_coefficients,
    estimate_coefficients,
    link_adjusted_coefficients,
    makespan,
    network_coefficients,
    node_coefficient,
    optimal_capacity_factors,
    optimal_makespan,
    optimal_partition_sizes,
    rebalanced_shares,
)
from .blocks import AreaSet, BlockArea, TripletBlock, VertexEdgeMap, build_blocks
from .config import (BASELINE, FULL, NETWORK_RESILIENT, PRESETS, RESILIENT,
                     ClusterSpec, MiddlewareConfig, RuntimeConfig,
                     StragglerConfig)
from .daemon import Daemon
from .middleware import GXPlug
from .pipeline import (
    PAPER_FIG15_COEFFICIENTS,
    PipelineCoefficients,
    coefficients_for,
    pipeline_makespan_from_stage_times,
)
from .sync_cache import GlobalQueues, LRUVertexCache
from .sync_skip import SkipDetector, SkipStats
from .template import AlgorithmState, AlgorithmTemplate, MessageSet

__all__ = [
    "GXPlug",
    "MiddlewareConfig",
    "StragglerConfig",
    "ClusterSpec",
    "RuntimeConfig",
    "FULL",
    "BASELINE",
    "RESILIENT",
    "NETWORK_RESILIENT",
    "PRESETS",
    "Agent",
    "Daemon",
    "EdgePassResult",
    "AlgorithmTemplate",
    "AlgorithmState",
    "MessageSet",
    "TripletBlock",
    "BlockArea",
    "AreaSet",
    "VertexEdgeMap",
    "build_blocks",
    "PipelineCoefficients",
    "PAPER_FIG15_COEFFICIENTS",
    "coefficients_for",
    "pipeline_makespan_from_stage_times",
    "LRUVertexCache",
    "GlobalQueues",
    "SkipDetector",
    "SkipStats",
    "optimal_partition_sizes",
    "optimal_makespan",
    "optimal_capacity_factors",
    "balancing_factors",
    "accelerators_for_load",
    "makespan",
    "node_coefficient",
    "cluster_coefficients",
    "degraded_coefficients",
    "estimate_coefficients",
    "rebalanced_shares",
    "network_coefficients",
    "link_adjusted_coefficients",
]
