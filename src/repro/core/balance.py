"""Workload balancing: estimation model and Lemmas 2-3 (§III-C).

The middleware models a node's iteration time as ``T_j = c_j d_j +
s T_call`` where ``c_j`` is the per-entity processing coefficient and
``1/c_j`` the *computation capacity factor*.  Two tuning cases:

* **Case 1 — tune partition sizes** for fixed capacities (Lemma 2):
  ``d_j* = (1/c_j) / Σ(1/c) · D`` equalizes ``c_j d_j`` across nodes.
* **Case 2 — tune capacities** for fixed partitions (Lemma 3): given the
  per-node maximum available capacity factor ``f``, set
  ``1/c_j = f d_j / d*`` where ``d* = max d_j``.

Both optima are verified against brute-force minimization in the tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import math

import numpy as np

from ..errors import MiddlewareError
from ..cluster.node import DistributedNode, HostRuntime


def makespan(sizes: Sequence[float], coefficients: Sequence[float]) -> float:
    """The balancing objective G = max_j c_j d_j (Eq. 5)."""
    sizes = np.asarray(sizes, dtype=np.float64)
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if sizes.shape != coeffs.shape:
        raise MiddlewareError(
            f"{sizes.size} sizes vs {coeffs.size} coefficients"
        )
    if sizes.size == 0:
        raise MiddlewareError("need at least one node")
    return float(np.max(coeffs * sizes))


def optimal_partition_sizes(total: float,
                            coefficients: Sequence[float]) -> np.ndarray:
    """Lemma 2: d_j proportional to capacity factors 1/c_j.

    Returns real-valued sizes summing to ``total``; the caller rounds them
    into partition ``shares``.
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.size == 0:
        raise MiddlewareError("need at least one node")
    if (coeffs <= 0).any():
        raise MiddlewareError("coefficients must be positive")
    if total < 0:
        raise MiddlewareError(f"negative total workload {total}")
    inv = 1.0 / coeffs
    return inv / inv.sum() * total


def optimal_makespan(total: float,
                     coefficients: Sequence[float]) -> float:
    """Lemma 2's optimum value: D / Σ(1/c_j)."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if (coeffs <= 0).any():
        raise MiddlewareError("coefficients must be positive")
    return float(total / (1.0 / coeffs).sum())


def balancing_factors(coefficients: Sequence[float]) -> np.ndarray:
    """The paper's balancing factors (1/c_j) / Σ(1/c_j) — usable directly
    as partitioner ``shares``."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if (coeffs <= 0).any():
        raise MiddlewareError("coefficients must be positive")
    inv = 1.0 / coeffs
    return inv / inv.sum()


def optimal_capacity_factors(sizes: Sequence[float],
                             max_factor: float) -> np.ndarray:
    """Lemma 3: 1/c_j = f · d_j / d* for fixed partition sizes.

    ``max_factor`` is the largest capacity factor a node may be given
    (e.g. the full GPU pool of the cloud).  The returned factors give
    every node the same finish time d*/f while using the least capacity.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.size == 0:
        raise MiddlewareError("need at least one node")
    if (sizes < 0).any():
        raise MiddlewareError("sizes must be non-negative")
    if max_factor <= 0:
        raise MiddlewareError(f"max capacity factor must be > 0")
    d_star = sizes.max()
    if d_star == 0:
        return np.zeros_like(sizes)
    return max_factor * sizes / d_star


def accelerators_for_load(sizes: Sequence[float], max_factor: float,
                          unit_factor: float) -> List[int]:
    """Case-2 deployment helper: GPUs per node for balanced finish times.

    Rounds Lemma 3's ideal capacity factors up to whole accelerators of
    capacity ``unit_factor`` (e.g. one V100), as the middleware does when
    it "dynamically allocate[s] idle accelerators to generate more daemons
    for the node demanding computation powers".
    """
    if unit_factor <= 0:
        raise MiddlewareError("unit capacity factor must be > 0")
    ideal = optimal_capacity_factors(sizes, max_factor)
    return [max(1, int(math.ceil(f / unit_factor - 1e-9))) if f > 0 else 0
            for f in ideal]


def node_coefficient(runtime: HostRuntime,
                     accelerators: Sequence) -> float:
    """Estimate a node's c_j (ms per entity) from its device models.

    Per §III-C, T_total^j = (T_n + T_c + T_u) so the coefficient is the
    sum of the per-entity download, compute and upload slopes.  With
    several daemons on one agent the compute slope shrinks by their summed
    capacity.
    """
    k1 = runtime.download_ms_per_entity
    k3 = runtime.upload_ms_per_entity
    if accelerators:
        capacity = sum(a.model.capacity_factor() for a in accelerators)
        k2 = 1.0 / capacity
    else:
        k2 = runtime.compute.per_entity_ms
    return k1 + k2 + k3


def cluster_coefficients(nodes: Sequence[DistributedNode]) -> List[float]:
    """Per-node c_j estimates for a cluster (inputs to Lemma 2)."""
    return [node_coefficient(n.runtime, n.accelerators) for n in nodes]


def degraded_coefficients(nodes: Sequence[DistributedNode],
                          degraded: Sequence[int]) -> List[float]:
    """Per-node c_j after some nodes fell back to their host path.

    A degraded node's accelerators are written off for the rest of the
    job, so its coefficient is the bare host-compute one; healthy nodes
    keep their accelerated estimate.  Feeding these into
    :func:`balancing_factors` gives the Lemma-2 shares the engine uses
    to repartition at rollback time — the degraded node's partition
    shrinks in proportion to the capacity it lost.
    """
    down = set(int(n) for n in degraded)
    return [node_coefficient(
                n.runtime, [] if n.node_id in down else n.accelerators)
            for n in nodes]


def rebalanced_shares(nodes: Sequence[DistributedNode],
                      degraded: Sequence[int]) -> np.ndarray:
    """Lemma-2 partition shares for a partially degraded cluster."""
    return balancing_factors(degraded_coefficients(nodes, degraded))


def network_coefficients(topology, bytes_per_entity: float) -> np.ndarray:
    """Per-node *network* cost slopes (ms per entity) over a topology.

    The §III-C model prices only compute: ``T_j = c_j d_j``.  With a
    rack topology each node's sync bytes also cross its uplink path at
    that path's per-byte rate, which is just another per-entity slope —
    additive with the compute coefficient, so Lemma 2 applies unchanged
    to the sum.  ``bytes_per_entity`` converts entities to wire bytes
    (the engine derives it from the vertex width and the graph's
    edge/vertex ratio).
    """
    if bytes_per_entity < 0:
        raise MiddlewareError(
            f"negative bytes_per_entity {bytes_per_entity}")
    return np.array([topology.path_ms_per_byte(j) * bytes_per_entity
                     for j in range(topology.num_nodes)],
                    dtype=np.float64)


def link_adjusted_coefficients(compute: Sequence[float],
                               network: Sequence[float],
                               inflations: Sequence[float]) -> np.ndarray:
    """Fold observed link inflation into Lemma-2 inputs.

    ``c_eff_j = compute_j + inflation_j * network_j`` — a link running
    ``k``x slow makes its node's wire slope ``k``x steeper, so
    :func:`balancing_factors` shrinks that node's share exactly the way
    it shrinks a slow daemon's.  ``inflations`` should be 1.0 for
    healthy links (the detector's per-link EWMA for flagged ones).
    """
    comp = np.asarray(compute, dtype=np.float64)
    net = np.asarray(network, dtype=np.float64)
    infl = np.asarray(inflations, dtype=np.float64)
    if not comp.shape == net.shape == infl.shape:
        raise MiddlewareError(
            f"shape mismatch: {comp.size} compute vs {net.size} network "
            f"vs {infl.size} inflation entries")
    if (comp <= 0).any():
        raise MiddlewareError("coefficients must be positive")
    if (net < 0).any():
        raise MiddlewareError("network coefficients must be >= 0")
    if (infl < 1.0 - 1e-12).any():
        raise MiddlewareError("link inflations must be >= 1")
    return comp + infl * net


def estimate_coefficients(observations, prior: Sequence[float],
                          alpha: float = 0.5) -> np.ndarray:
    """Online re-estimation of the Lemma-2 inputs from observed times.

    The §III-C model assumes the ``c_j`` are known and stationary; a
    gray failure violates exactly that.  ``observations`` maps node
    index -> ``(entities, elapsed_ms)`` for one superstep's edge pass,
    ``prior`` is the current per-node estimate (start it from
    :func:`cluster_coefficients`).  Each observed node moves its
    estimate an EWMA step toward the empirical ``elapsed/entities``;
    unobserved nodes keep the prior.  Returns a fresh array — feed it
    into :func:`balancing_factors` to see where the optimal shares have
    drifted.
    """
    est = np.asarray(prior, dtype=np.float64).copy()
    if est.size == 0:
        raise MiddlewareError("need at least one node")
    if (est <= 0).any():
        raise MiddlewareError("coefficients must be positive")
    if not 0.0 < alpha <= 1.0:
        raise MiddlewareError(f"alpha must be in (0, 1], got {alpha}")
    for node, (entities, elapsed_ms) in observations.items():
        node = int(node)
        if not 0 <= node < est.size:
            raise MiddlewareError(
                f"observation for unknown node {node} "
                f"({est.size} node(s))"
            )
        if entities <= 0 or elapsed_ms <= 0:
            continue  # an idle pass says nothing about the coefficient
        c_obs = float(elapsed_ms) / float(entities)
        est[node] = (1.0 - alpha) * est[node] + alpha * c_obs
    return est
