"""Comparator systems for the Fig. 9 evaluation.

Simulated stand-ins for the paper's baselines: Gunrock (single-node
single-GPU) and Lux (multi-node multi-GPU), sharing the same real
computation kernels as the rest of the library but with their own cost
and memory models.
"""

from .common import (
    DEVICE_BYTES_PER_EDGE,
    DEVICE_BYTES_PER_VERTEX,
    BaselineResult,
    global_iteration,
    run_global_loop,
)
from .gunrock import GunrockSystem
from .lux import LuxSystem, distributed_gpu_fit_bytes, distributed_gpu_fits

__all__ = [
    "BaselineResult",
    "GunrockSystem",
    "LuxSystem",
    "global_iteration",
    "run_global_loop",
    "distributed_gpu_fits",
    "distributed_gpu_fit_bytes",
    "DEVICE_BYTES_PER_EDGE",
    "DEVICE_BYTES_PER_VERTEX",
]
