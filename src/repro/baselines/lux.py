"""Lux-like baseline: multi-node multi-GPU graph system [19].

Lux "focuses on exploiting GPU internal mechanisms" (fast device kernels)
but, per the paper's related-work discussion, "without the support of
mature distributed systems ... falls short in ... efficient data
synchronization": every iteration pays a full mirror exchange whose
volume is untrimmed by anything like GX-Plug's synchronization caching,
lazy uploading or skipping.  That is why Lux wins at 1-2 GPUs but loses
ground as GPUs (and synchronization pressure) grow — the crossover of
Fig. 9(a) — and why GX-Plug is ~40% faster on Twitter with 4 GPUs
(Fig. 9(b)).
"""

from __future__ import annotations

import math
from typing import Optional

from ..cluster.network import DEFAULT_NETWORK, NetworkModel
from ..accel.costmodel import V100
from ..core.template import AlgorithmTemplate
from ..errors import DeviceMemoryError, SimulationError
from ..graph.graph import Graph
from .common import (
    DEVICE_BYTES_PER_EDGE,
    DEVICE_BYTES_PER_VERTEX,
    BaselineResult,
    run_global_loop,
)

#: Lux's hand-tuned GPU kernels are a bit faster than general daemons.
KERNEL_EFFICIENCY = 0.85

#: per-GPU coordination cost per iteration (task launch, fences)
COORD_MS_PER_GPU = 3.0

#: per GPU *pair* handshake cost per iteration (all-to-all channels)
PAIR_MS = 3.0

#: bytes per uncombined message cell crossing GPUs: the 8-byte value
#: plus routing metadata (destination id, edge tag) that per-destination
#: combining would have amortized away
BYTES_PER_VALUE_CELL = 14

#: distributed systems pack partitioned edges compactly (int32 pair) —
#: half the staging representation a single-GPU system keeps resident
DIST_BYTES_PER_EDGE = 8


def distributed_gpu_fit_bytes(graph: Graph, num_gpus: int) -> int:
    """Per-GPU working set of an eager multi-GPU system.

    Edges split evenly (compact representation); every GPU also keeps a
    full vertex mirror table plus per-peer all-to-all staging buffers that
    grow quadratically with the GPU count — the memory model behind the
    paper's "no result for using 4 GPUs on UK-2007, for all methods"
    (Fig. 9(b)).
    """
    if num_gpus < 1:
        raise SimulationError(f"need >=1 GPUs, got {num_gpus}")
    edge_bytes = graph.num_edges * DIST_BYTES_PER_EDGE // num_gpus
    mirror_bytes = graph.num_vertices * DEVICE_BYTES_PER_VERTEX
    buffer_bytes = int(mirror_bytes * 2.0 * (num_gpus - 1) ** 2)
    return edge_bytes + mirror_bytes + buffer_bytes


def distributed_gpu_fits(graph: Graph, num_gpus: int,
                         memory_bytes: int = V100.memory_bytes) -> bool:
    """Does the per-GPU working set fit device memory?"""
    return distributed_gpu_fit_bytes(graph, num_gpus) <= memory_bytes


class LuxSystem:
    """Multi-GPU distributed graph processor with eager synchronization."""

    name = "lux"

    def __init__(self, graph: Graph, num_gpus: int,
                 network: Optional[NetworkModel] = None) -> None:
        if num_gpus < 1:
            raise SimulationError(f"need >=1 GPUs, got {num_gpus}")
        self.graph = graph
        self.num_gpus = num_gpus
        self.network = network if network is not None else DEFAULT_NETWORK
        self._per_gpu_bytes = distributed_gpu_fit_bytes(graph, num_gpus)

    def fits(self) -> bool:
        return self._per_gpu_bytes <= V100.memory_bytes

    def run(self, algorithm: AlgorithmTemplate,
            max_iterations: Optional[int] = None) -> BaselineResult:
        if not self.fits():
            raise DeviceMemoryError(
                f"lux: per-GPU working set {self._per_gpu_bytes} B exceeds "
                f"{V100.memory_bytes} B with {self.num_gpus} GPUs"
            )
        g = self.num_gpus
        setup = V100.init_ms + self._per_gpu_bytes * 0.0000002

        state_width = getattr(algorithm, "sources", None)
        width = len(state_width) if state_width else 1

        def iteration_cost(active_edges: int, changed: int) -> float:
            per_gpu_edges = math.ceil(active_edges / g)
            compute = (V100.call_ms
                       + per_gpu_edges * V100.compute_ms_per_entity
                       * KERNEL_EFFICIENCY)
            # eager, combiner-less push: every active cut edge carries its
            # raw message to the destination GPU (GX-Plug instead merges
            # per destination before anything crosses nodes), and there is
            # no caching / laziness / skipping to trim the exchange
            cut_edges = active_edges * (g - 1) / g
            payload = int(cut_edges * width * BYTES_PER_VALUE_CELL)
            sync = self.network.sync_ms(g, payload) if g > 1 else 0.0
            coord = COORD_MS_PER_GPU * g + PAIR_MS * g * (g - 1) / 2.0
            return compute + sync + coord

        result = run_global_loop(algorithm, self.graph, max_iterations,
                                 iteration_cost)
        result.total_ms += setup
        result.system = self.name
        return result
