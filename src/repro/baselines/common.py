"""Shared machinery for the baseline systems (Gunrock-like, Lux-like)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.template import AlgorithmTemplate
from ..graph.graph import Graph

#: bytes per edge resident on a device (src, dst, weight packed)
DEVICE_BYTES_PER_EDGE = 16
#: bytes per vertex attribute entry resident on a device
DEVICE_BYTES_PER_VERTEX = 8


@dataclass
class BaselineResult:
    """Outcome of a baseline system run."""

    values: np.ndarray
    iterations: int
    total_ms: float
    converged: bool
    system: str
    iteration_ms: List[float] = field(default_factory=list)


def global_iteration(algorithm: AlgorithmTemplate, graph: Graph,
                     values: np.ndarray, active: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """One synchronous iteration over the whole graph.

    Returns ``(new_values, changed_ids, active_edge_count, message_count)``.
    """
    sel = active[graph.src]
    src = graph.src[sel]
    dst = graph.dst[sel]
    w = graph.weights[sel]
    if src.size == 0:
        return values, np.empty(0, dtype=np.int64), 0, 0
    msgs = algorithm.msg_gen(src, dst, w, values)
    merged = algorithm.msg_merge(dst, msgs)
    new_values, changed = algorithm.msg_apply(values, merged)
    return new_values, changed, int(src.size), merged.size


def run_global_loop(algorithm: AlgorithmTemplate, graph: Graph,
                    max_iterations: Optional[int],
                    iteration_cost) -> BaselineResult:
    """Drive the synchronous loop, charging ``iteration_cost`` per round.

    ``iteration_cost(active_edges, changed_count)`` returns simulated ms.
    """
    state = algorithm.init_state(graph)
    values, active = state.values, state.active
    cap = max_iterations if max_iterations is not None \
        else algorithm.default_max_iterations
    total = 0.0
    per_iter: List[float] = []
    converged = False
    iteration = 0
    while iteration < cap:
        values, changed, d, _n_msgs = global_iteration(
            algorithm, graph, values, active)
        cost = iteration_cost(d, int(changed.size))
        total += cost
        per_iter.append(cost)
        active = algorithm.next_active(graph, changed, graph.num_vertices)
        iteration += 1
        if algorithm.is_converged(int(changed.size), iteration):
            converged = True
            break
    return BaselineResult(values, iteration, total, converged,
                          system="baseline", iteration_ms=per_iter)
