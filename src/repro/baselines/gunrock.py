"""Gunrock-like baseline: single-node, single-GPU graph system [4].

Gunrock keeps the whole graph resident on one GPU and runs frontier-
centric kernels with essentially no host involvement, which makes it the
fastest system in the paper's single-GPU comparison (Fig. 9(a)) — and
makes it overflow on Twitter/UK-2007, whose data "cannot be accommodated
by a single GPU" (Fig. 9(b)).
"""

from __future__ import annotations

from typing import Optional

from ..accel import make_gpu
from ..accel.device import Accelerator
from ..algorithms import MultiSourceSSSP  # noqa: F401 (doc example)
from ..core.template import AlgorithmTemplate
from ..errors import DeviceMemoryError
from ..graph.graph import Graph
from .common import (
    DEVICE_BYTES_PER_EDGE,
    DEVICE_BYTES_PER_VERTEX,
    BaselineResult,
    run_global_loop,
)

#: host->device staging cost of the initial bulk graph load (ms per byte)
H2D_MS_PER_BYTE = 0.0000002

#: Gunrock's hand-tuned kernels beat the general-purpose daemon kernels
#: on a single device by roughly this factor.
KERNEL_EFFICIENCY = 0.75


class GunrockSystem:
    """Single-GPU in-memory graph processor."""

    name = "gunrock"

    def __init__(self, graph: Graph,
                 gpu: Optional[Accelerator] = None) -> None:
        self.graph = graph
        self.gpu = gpu if gpu is not None else make_gpu()
        self._footprint = graph.memory_footprint(
            DEVICE_BYTES_PER_EDGE, DEVICE_BYTES_PER_VERTEX)

    def fits(self) -> bool:
        """Can the whole graph live in device memory?"""
        return self._footprint <= self.gpu.model.memory_bytes

    def run(self, algorithm: AlgorithmTemplate,
            max_iterations: Optional[int] = None) -> BaselineResult:
        """Raises :class:`DeviceMemoryError` when the graph cannot fit
        (the paper's 'Gunrock gets overflowed' case)."""
        self.gpu.ensure_capacity(self._footprint)
        setup = self.gpu.init() + self._footprint * H2D_MS_PER_BYTE
        model = self.gpu.model

        def iteration_cost(active_edges: int, changed: int) -> float:
            # everything stays on the device: one fused kernel per round
            return (model.call_ms
                    + active_edges * model.compute_ms_per_entity
                    * KERNEL_EFFICIENCY)

        result = run_global_loop(algorithm, self.graph, max_iterations,
                                 iteration_cost)
        result.total_ms += setup
        result.system = self.name
        return result
